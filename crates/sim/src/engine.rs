//! A minimal event-driven simulation loop.
//!
//! The engine owns the clock and the future-event list; a handler closure
//! reacts to each event and may schedule more. Most of the FREERIDE-G
//! execution model is *phase-structured* and uses the analytic components
//! ([`crate::server`], [`crate::fairshare`]) directly, but the engine is the
//! general escape hatch (and is what the fair-share simulator is built on
//! conceptually: advance to next event, update state, repeat).

use crate::event::EventQueue;
use crate::time::SimTime;

/// The hook type accepted by [`Engine::set_observer`].
pub type Observer<E> = Box<dyn FnMut(SimTime, &E)>;

/// An event-driven simulation driver.
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    processed: u64,
    observer: Option<Observer<E>>,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// A fresh engine with the clock at zero.
    pub fn new() -> Self {
        Engine { now: SimTime::ZERO, queue: EventQueue::new(), processed: 0, observer: None }
    }

    /// Install a hook called for every event, just before its handler,
    /// with the event's instant — the attachment point for tracing and
    /// metrics collection. Replaces any previous observer.
    pub fn set_observer(&mut self, observer: impl FnMut(SimTime, &E) + 'static) {
        self.observer = Some(Box::new(observer));
    }

    /// Remove the observer installed by [`Engine::set_observer`].
    pub fn clear_observer(&mut self) {
        self.observer = None;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events handled so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedule an event at an absolute instant. Panics if `at` is in the
    /// simulated past — discrete-event simulations must never rewind.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past: now={}, at={}", self.now, at);
        self.queue.push(at, event);
    }

    /// Schedule an event `after` the current instant.
    pub fn schedule_after(&mut self, after: crate::time::SimDuration, event: E) {
        let at = self.now + after;
        self.queue.push(at, event);
    }

    /// Run until the event list drains. The handler receives the engine so
    /// it can schedule follow-up events and read the clock.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Engine<E>, E)) {
        while let Some((at, event)) = self.queue.pop() {
            debug_assert!(at >= self.now, "event queue returned a past event");
            self.now = at;
            self.processed += 1;
            if let Some(obs) = self.observer.as_mut() {
                obs(at, &event);
            }
            handler(self, event);
        }
    }

    /// Run until the event list drains or the clock passes `deadline`;
    /// returns `true` if the queue drained.
    pub fn run_until(
        &mut self,
        deadline: SimTime,
        mut handler: impl FnMut(&mut Engine<E>, E),
    ) -> bool {
        loop {
            match self.queue.peek_time() {
                None => return true,
                Some(t) if t > deadline => return false,
                Some(_) => {
                    let (at, event) = self.queue.pop().expect("peeked event vanished");
                    self.now = at;
                    self.processed += 1;
                    if let Some(obs) = self.observer.as_mut() {
                        obs(at, &event);
                    }
                    handler(self, event);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
    }

    #[test]
    fn clock_advances_with_events() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_nanos(100), Ev::Tick(1));
        eng.schedule_at(SimTime::from_nanos(50), Ev::Tick(0));
        let mut seen = Vec::new();
        eng.run(|e, ev| {
            seen.push((e.now().as_nanos(), ev));
        });
        assert_eq!(seen, vec![(50, Ev::Tick(0)), (100, Ev::Tick(1))]);
        assert_eq!(eng.processed(), 2);
    }

    #[test]
    fn handler_can_cascade_events() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::ZERO, 0u32);
        let mut count = 0;
        eng.run(|e, n| {
            count += 1;
            if n < 9 {
                e.schedule_after(SimDuration::from_nanos(10), n + 1);
            }
        });
        assert_eq!(count, 10);
        assert_eq!(eng.now(), SimTime::from_nanos(90));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut eng = Engine::new();
        for i in 0..10u64 {
            eng.schedule_at(SimTime::from_nanos(i * 100), i);
        }
        let mut seen = 0;
        let drained = eng.run_until(SimTime::from_nanos(450), |_, _| seen += 1);
        assert!(!drained);
        assert_eq!(seen, 5);
        // The remaining events are still there and can be drained later.
        let drained = eng.run_until(SimTime::MAX, |_, _| seen += 1);
        assert!(drained);
        assert_eq!(seen, 10);
    }

    #[test]
    fn observer_sees_every_event_before_its_handler() {
        let mut eng = Engine::new();
        for i in 0..5u32 {
            eng.schedule_at(SimTime::from_nanos(i as u64 * 10), Ev::Tick(i));
        }
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let obs_seen = seen.clone();
        eng.set_observer(move |at, ev: &Ev| {
            let Ev::Tick(i) = ev;
            obs_seen.borrow_mut().push((at.as_nanos(), *i, "obs"));
        });
        let handler_seen = seen.clone();
        eng.run(|_, ev| {
            let Ev::Tick(i) = ev;
            handler_seen.borrow_mut().push((0, i, "handler"));
        });
        let log = seen.borrow();
        assert_eq!(log.len(), 10);
        for i in 0..5usize {
            assert_eq!(log[2 * i].2, "obs");
            assert_eq!(log[2 * i + 1].2, "handler");
            assert_eq!(log[2 * i].1, i as u32);
        }
        // And it can be removed again.
        eng.clear_observer();
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_nanos(100), ());
        eng.run(|e, ()| {
            e.schedule_at(SimTime::from_nanos(50), ());
        });
    }
}
