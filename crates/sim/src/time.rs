//! Virtual time for the simulation.
//!
//! Time is kept as integer nanoseconds. Using integers (rather than `f64`
//! seconds) gives a total order, exact accumulation, and bit-identical
//! replays across runs and platforms — a prerequisite for the
//! profile-then-predict experiments, where a profile run and an "actual"
//! run of the same configuration must agree exactly.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the virtual clock, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "unscheduled" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Construct from (non-negative, finite) seconds, rounding to nanoseconds.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_nanos(secs))
    }

    /// Seconds since the epoch as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since `earlier`, saturating at zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from (non-negative, finite) seconds, rounding to nanoseconds.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_nanos(secs))
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting and for the prediction model,
    /// which works in real-valued time).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale by a non-negative real factor, rounding to nanoseconds.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration scale factor must be finite and non-negative, got {factor}"
        );
        SimDuration(secs_to_nanos(self.as_secs_f64() * factor))
    }
}

fn secs_to_nanos(secs: f64) -> u64 {
    assert!(
        secs.is_finite() && secs >= 0.0,
        "virtual time must be finite and non-negative, got {secs}"
    );
    let ns = secs * 1e9;
    assert!(ns <= u64::MAX as f64, "virtual time overflow: {secs} s");
    ns.round() as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow: rhs is later than lhs"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration subtraction underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_500);
        let d = SimDuration::from_micros(2);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).as_nanos(), 3_500);
    }

    #[test]
    fn seconds_conversion_is_exact_for_nanos() {
        let d = SimDuration::from_secs_f64(1.25);
        assert_eq!(d.as_nanos(), 1_250_000_000);
        assert!((d.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(b.saturating_since(a).as_nanos(), 10);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(1));
        assert_eq!(d * 3, SimDuration::from_secs(6));
        assert_eq!(d / 4, SimDuration::from_millis(500));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_seconds_rejected() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    proptest! {
        #[test]
        fn add_then_sub_is_identity(ns in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
            let t = SimTime::from_nanos(ns);
            let dur = SimDuration::from_nanos(d);
            prop_assert_eq!((t + dur) - t, dur);
        }

        #[test]
        fn ordering_agrees_with_nanos(a in any::<u64>(), b in any::<u64>()) {
            let (ta, tb) = (SimTime::from_nanos(a), SimTime::from_nanos(b));
            prop_assert_eq!(ta.cmp(&tb), a.cmp(&b));
        }

        #[test]
        fn secs_f64_roundtrip_close(ms in 0u64..10_000_000u64) {
            let d = SimDuration::from_millis(ms);
            let back = SimDuration::from_secs_f64(d.as_secs_f64());
            // f64 has 52 bits of mantissa; millisecond-granularity values
            // below ~10^7 s round-trip exactly.
            prop_assert_eq!(back, d);
        }
    }
}
