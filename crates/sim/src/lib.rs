//! # fg-sim — deterministic discrete-event simulation substrate
//!
//! FREERIDE-G's published evaluation ran on two physical clusters. This
//! reproduction replaces the hardware with a deterministic virtual-time
//! simulation; `fg-sim` provides the building blocks:
//!
//! * [`time`] — integer-nanosecond virtual time ([`SimTime`], [`SimDuration`])
//!   so schedules are totally ordered and runs are bit-reproducible.
//! * [`event`] — a generic event queue with FIFO tie-breaking.
//! * [`engine`] — a minimal event-driven simulation driver.
//! * [`server`] — analytic FIFO queueing servers and server pools used to
//!   model disks and CPUs.
//! * [`fairshare`] — max-min fair bandwidth sharing across capacitated
//!   resources (NICs, WAN links, repository backplanes), the core of the
//!   data-movement model.
//! * [`rng`] — seeded RNG helpers so every experiment is reproducible.
//! * [`fault`] — seeded fault schedules (data-node crashes, WAN
//!   degradation windows, straggler nodes) injected into runs as data.
//!
//! Nothing in this crate knows about grids or data mining; it is a
//! general-purpose substrate with its own invariants and tests.

#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod fairshare;
pub mod fault;
pub mod rng;
pub mod server;
pub mod time;

pub use engine::Engine;
pub use event::EventQueue;
pub use fairshare::{FairShareSim, Flow, FlowOutcome, ResourceId};
pub use fault::{CrashFault, DegradationWindow, FaultEvent, FaultSchedule, StragglerFault};
pub use server::{FifoServer, Interval, ServerPool};
pub use time::{SimDuration, SimTime};
