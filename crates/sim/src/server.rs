//! Analytic FIFO queueing servers.
//!
//! Disks and CPUs in the cluster model are work-conserving FIFO servers
//! with deterministic service times, so their schedules can be computed
//! directly (arrival by arrival) instead of via the event loop. The
//! results are identical to an event-driven simulation of an M/G/1-style
//! queue with deterministic input, and far cheaper.

use crate::time::{SimDuration, SimTime};

/// A closed service interval `[start, end)` produced by a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// When service began (>= arrival).
    pub start: SimTime,
    /// When service completed.
    pub end: SimTime,
}

impl Interval {
    /// Length of the interval.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// A single work-conserving FIFO server.
///
/// Jobs must be submitted in non-decreasing arrival order (FIFO means the
/// queue discipline is arrival order; submitting out of order would let a
/// later arrival overtake an earlier one).
#[derive(Debug, Clone)]
pub struct FifoServer {
    free_at: SimTime,
    last_arrival: SimTime,
    busy: SimDuration,
    jobs: u64,
    slowdown: f64,
}

impl Default for FifoServer {
    fn default() -> Self {
        Self::new()
    }
}

impl FifoServer {
    /// An idle server.
    pub fn new() -> Self {
        FifoServer {
            free_at: SimTime::ZERO,
            last_arrival: SimTime::ZERO,
            busy: SimDuration::ZERO,
            jobs: 0,
            slowdown: 1.0,
        }
    }

    /// An idle server whose service times are stretched by `slowdown >= 1`
    /// — a straggler (fault injection). A factor of exactly `1.0` keeps
    /// service times bit-identical to a healthy server.
    pub fn with_slowdown(slowdown: f64) -> Self {
        assert!(slowdown >= 1.0, "a straggler is slower, not faster: {slowdown}");
        FifoServer { slowdown, ..Self::new() }
    }

    /// This server's service-time multiplier.
    pub fn slowdown(&self) -> f64 {
        self.slowdown
    }

    /// Submit a job arriving at `arrival` needing `service` time (on a
    /// healthy server; stragglers stretch it by their factor).
    pub fn submit(&mut self, arrival: SimTime, service: SimDuration) -> Interval {
        assert!(
            arrival >= self.last_arrival,
            "FIFO server requires non-decreasing arrivals: last={}, got={}",
            self.last_arrival,
            arrival
        );
        self.last_arrival = arrival;
        // Guarded so healthy servers never round-trip through floats.
        let service = if self.slowdown == 1.0 { service } else { service.mul_f64(self.slowdown) };
        let start = self.free_at.max(arrival);
        let end = start + service;
        self.free_at = end;
        self.busy += service;
        self.jobs += 1;
        Interval { start, end }
    }

    /// When the server next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total busy time accumulated.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Number of jobs served.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }
}

/// A pool of `k` identical FIFO servers; each job goes to the server that
/// can start it earliest (ties broken by lowest index, deterministically).
#[derive(Debug, Clone)]
pub struct ServerPool {
    servers: Vec<FifoServer>,
    last_arrival: SimTime,
}

impl ServerPool {
    /// A pool of `k >= 1` idle servers.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "a server pool needs at least one server");
        ServerPool { servers: vec![FifoServer::new(); k], last_arrival: SimTime::ZERO }
    }

    /// A pool with one server per slowdown factor (fault injection:
    /// stragglers run at `factor >= 1`, healthy servers at exactly `1.0`).
    pub fn with_slowdowns(slowdowns: &[f64]) -> Self {
        assert!(!slowdowns.is_empty(), "a server pool needs at least one server");
        ServerPool {
            servers: slowdowns.iter().map(|&f| FifoServer::with_slowdown(f)).collect(),
            last_arrival: SimTime::ZERO,
        }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Always false; pools have at least one server.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Submit a job; returns the chosen server index and its interval.
    pub fn submit(&mut self, arrival: SimTime, service: SimDuration) -> (usize, Interval) {
        assert!(arrival >= self.last_arrival, "server pool requires non-decreasing arrivals");
        self.last_arrival = arrival;
        let idx = self
            .servers
            .iter()
            .enumerate()
            .min_by_key(|(i, s)| (s.free_at().max(arrival), *i))
            .map(|(i, _)| i)
            .expect("pool is non-empty");
        let iv = self.servers[idx].submit(arrival, service);
        (idx, iv)
    }

    /// The instant all submitted work completes (the makespan's end).
    pub fn all_done_at(&self) -> SimTime {
        self.servers.iter().map(|s| s.free_at()).max().unwrap_or(SimTime::ZERO)
    }

    /// Per-server busy times (for utilization reporting).
    pub fn busy_times(&self) -> Vec<SimDuration> {
        self.servers.iter().map(|s| s.busy_time()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }
    fn d(ns: u64) -> SimDuration {
        SimDuration::from_nanos(ns)
    }

    #[test]
    fn idle_server_starts_immediately() {
        let mut s = FifoServer::new();
        let iv = s.submit(t(10), d(5));
        assert_eq!(iv, Interval { start: t(10), end: t(15) });
    }

    #[test]
    fn busy_server_queues() {
        let mut s = FifoServer::new();
        s.submit(t(0), d(100));
        let iv = s.submit(t(10), d(5));
        assert_eq!(iv.start, t(100));
        assert_eq!(iv.end, t(105));
        assert_eq!(s.busy_time(), d(105));
        assert_eq!(s.jobs(), 2);
    }

    #[test]
    fn server_goes_idle_between_bursts() {
        let mut s = FifoServer::new();
        s.submit(t(0), d(10));
        let iv = s.submit(t(50), d(10));
        assert_eq!(iv.start, t(50)); // idle gap, not back-to-back
    }

    #[test]
    #[should_panic(expected = "non-decreasing arrivals")]
    fn out_of_order_arrival_panics() {
        let mut s = FifoServer::new();
        s.submit(t(10), d(1));
        s.submit(t(5), d(1));
    }

    #[test]
    fn straggler_stretches_service_time() {
        let mut s = FifoServer::with_slowdown(3.0);
        let iv = s.submit(t(0), d(10));
        assert_eq!(iv, Interval { start: t(0), end: t(30) });
        assert_eq!(s.busy_time(), d(30));
    }

    #[test]
    fn unit_slowdown_is_bit_identical_to_healthy() {
        let mut healthy = FifoServer::new();
        let mut unit = FifoServer::with_slowdown(1.0);
        for i in 0..50u64 {
            assert_eq!(healthy.submit(t(i * 3), d(7)), unit.submit(t(i * 3), d(7)));
        }
        assert_eq!(healthy.busy_time(), unit.busy_time());
    }

    #[test]
    #[should_panic(expected = "slower, not faster")]
    fn speedup_factor_is_rejected() {
        FifoServer::with_slowdown(0.5);
    }

    #[test]
    fn pool_routes_around_a_straggler() {
        // One straggler at 10x: back-to-back jobs should pile onto the
        // healthy server once the straggler falls behind.
        let mut p = ServerPool::with_slowdowns(&[10.0, 1.0]);
        let mut straggler_jobs = 0;
        for _ in 0..10 {
            let (idx, _) = p.submit(SimTime::ZERO, d(10));
            if idx == 0 {
                straggler_jobs += 1;
            }
        }
        assert!(straggler_jobs < 5, "straggler took {straggler_jobs}/10 jobs");
    }

    #[test]
    fn pool_balances_over_servers() {
        let mut p = ServerPool::new(2);
        let (i0, _) = p.submit(t(0), d(100));
        let (i1, _) = p.submit(t(0), d(100));
        let (i2, iv2) = p.submit(t(0), d(100));
        assert_ne!(i0, i1);
        // Third job waits for whichever frees first (both at 100).
        assert!(i2 == i0 || i2 == i1);
        assert_eq!(iv2.start, t(100));
        assert_eq!(p.all_done_at(), t(200));
    }

    #[test]
    fn pool_of_one_behaves_like_single_server() {
        let mut p = ServerPool::new(1);
        let mut s = FifoServer::new();
        for i in 0..20u64 {
            let (idx, iv_pool) = p.submit(t(i * 7), d(13));
            let iv_single = s.submit(t(i * 7), d(13));
            assert_eq!(idx, 0);
            assert_eq!(iv_pool, iv_single);
        }
    }

    proptest! {
        /// FIFO invariant: service intervals on one server never overlap and
        /// never start before arrival.
        #[test]
        fn intervals_never_overlap(jobs in proptest::collection::vec((0u64..1000, 1u64..100), 1..100)) {
            let mut sorted = jobs.clone();
            sorted.sort_by_key(|&(a, _)| a);
            let mut s = FifoServer::new();
            let mut prev_end = SimTime::ZERO;
            for (a, sv) in sorted {
                let iv = s.submit(t(a), d(sv));
                prop_assert!(iv.start >= t(a));
                prop_assert!(iv.start >= prev_end);
                prop_assert_eq!(iv.duration(), d(sv));
                prev_end = iv.end;
            }
        }

        /// Work conservation: total busy time equals the sum of services,
        /// and the makespan is at least total work / k.
        #[test]
        fn pool_is_work_conserving(
            k in 1usize..8,
            jobs in proptest::collection::vec(1u64..100, 1..100),
        ) {
            let mut p = ServerPool::new(k);
            let mut total = 0u64;
            for &sv in &jobs {
                p.submit(SimTime::ZERO, d(sv));
                total += sv;
            }
            let busy: u64 = p.busy_times().iter().map(|b| b.as_nanos()).sum();
            prop_assert_eq!(busy, total);
            let lower_bound = total / k as u64;
            prop_assert!(p.all_done_at().as_nanos() >= lower_bound);
            // And no worse than serializing everything.
            prop_assert!(p.all_done_at().as_nanos() <= total);
        }
    }
}
