//! Fault schedules: seeded, deterministic descriptions of what goes
//! wrong during a simulated run.
//!
//! A [`FaultSchedule`] is pure data — it says *what* fails and *when*,
//! in virtual time, and nothing about how the middleware reacts. Three
//! fault kinds cover the grid failure modes FREERIDE-G-style middleware
//! must survive:
//!
//! * **Data-node crashes** — a repository node goes off-line at an
//!   instant and stays down for the rest of the run (fail-stop).
//! * **WAN degradation windows** — the achievable per-stream bandwidth
//!   drops to a fraction of nominal over `[from, until)`; overlapping
//!   windows compound multiplicatively.
//! * **Straggler compute nodes** — a node computes slower than its spec
//!   by a constant factor for the whole run (the classic gray failure).
//!
//! Schedules are plain serializable values, so an experiment's fault
//! injection is part of its recorded configuration. [`FaultSchedule::random`]
//! derives a schedule from a seed through [`crate::rng::stream_rng`],
//! making randomized fault campaigns reproducible bit-for-bit.

use crate::engine::Engine;
use crate::time::{SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A fail-stop crash of one repository data node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashFault {
    /// Index of the data node that dies.
    pub data_node: usize,
    /// Instant the node stops serving (it never returns).
    pub at: SimTime,
}

/// A WAN bandwidth degradation window `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationWindow {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Fraction of nominal bandwidth still available, `0 < factor <= 1`.
    pub factor: f64,
}

/// A compute node that runs slower than its machine spec.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StragglerFault {
    /// Index of the straggling compute node.
    pub compute_node: usize,
    /// Service-time multiplier, `>= 1`.
    pub slowdown: f64,
}

/// One fault materializing at an instant — the event-loop view of a
/// schedule, for consumers driving an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// A data node crashes.
    Crash(CrashFault),
    /// A degradation window opens.
    DegradationStart(DegradationWindow),
    /// A degradation window closes.
    DegradationEnd(DegradationWindow),
}

/// The full fault plan of one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Fail-stop data-node crashes.
    pub crashes: Vec<CrashFault>,
    /// WAN degradation windows.
    pub degradations: Vec<DegradationWindow>,
    /// Straggling compute nodes.
    pub stragglers: Vec<StragglerFault>,
}

impl FaultSchedule {
    /// The empty schedule: nothing ever fails.
    pub fn none() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// True if nothing ever fails — executors use this to stay on the
    /// exact fault-free code path.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.degradations.is_empty() && self.stragglers.is_empty()
    }

    /// Add a data-node crash. Chainable.
    pub fn crash(mut self, data_node: usize, at: SimTime) -> FaultSchedule {
        self.crashes.push(CrashFault { data_node, at });
        self
    }

    /// Add a WAN degradation window. Chainable. Panics unless
    /// `from < until` and `0 < factor <= 1`.
    pub fn degrade(mut self, from: SimTime, until: SimTime, factor: f64) -> FaultSchedule {
        assert!(from < until, "degradation window must have positive length");
        assert!(
            factor > 0.0 && factor <= 1.0,
            "degradation factor must be in (0, 1], got {factor}"
        );
        self.degradations.push(DegradationWindow { from, until, factor });
        self
    }

    /// Add a straggler compute node. Chainable. Panics unless
    /// `slowdown >= 1`.
    pub fn straggler(mut self, compute_node: usize, slowdown: f64) -> FaultSchedule {
        assert!(slowdown >= 1.0, "a straggler is slower, not faster: {slowdown}");
        self.stragglers.push(StragglerFault { compute_node, slowdown });
        self
    }

    /// Is `data_node` dead at instant `t`?
    pub fn is_crashed(&self, data_node: usize, t: SimTime) -> bool {
        self.crashes.iter().any(|c| c.data_node == data_node && c.at <= t)
    }

    /// Data nodes dead at instant `t`, ascending, deduplicated.
    pub fn crashed_nodes(&self, t: SimTime) -> Vec<usize> {
        let mut dead: Vec<usize> =
            self.crashes.iter().filter(|c| c.at <= t).map(|c| c.data_node).collect();
        dead.sort_unstable();
        dead.dedup();
        dead
    }

    /// Fraction of nominal WAN bandwidth available at instant `t`
    /// (product of all windows covering `t`; `1.0` outside every window).
    pub fn bandwidth_factor(&self, t: SimTime) -> f64 {
        self.degradations.iter().filter(|w| w.from <= t && t < w.until).map(|w| w.factor).product()
    }

    /// Service-time multiplier of `compute_node` (`1.0` for healthy
    /// nodes; straggler factors compound if listed twice).
    pub fn slowdown(&self, compute_node: usize) -> f64 {
        self.stragglers
            .iter()
            .filter(|s| s.compute_node == compute_node)
            .map(|s| s.slowdown)
            .product()
    }

    /// All instantaneous fault events, sorted by time (stragglers are
    /// run-long properties, not events).
    pub fn events(&self) -> Vec<(SimTime, FaultEvent)> {
        let mut out: Vec<(SimTime, FaultEvent)> = Vec::new();
        for &c in &self.crashes {
            out.push((c.at, FaultEvent::Crash(c)));
        }
        for &w in &self.degradations {
            out.push((w.from, FaultEvent::DegradationStart(w)));
            out.push((w.until, FaultEvent::DegradationEnd(w)));
        }
        out.sort_by_key(|&(t, _)| t);
        out
    }

    /// Schedule every fault event onto an engine (events already in the
    /// engine's past are dropped — the faults have, by definition,
    /// already happened).
    pub fn inject_into(&self, engine: &mut Engine<FaultEvent>) {
        for (t, ev) in self.events() {
            if t >= engine.now() {
                engine.schedule_at(t, ev);
            }
        }
    }

    /// A seeded random schedule over a run expected to span `horizon`:
    /// up to `max_crashes` crashes among `data_nodes` (always leaving at
    /// least one survivor), up to `max_windows` degradation windows, and
    /// up to `max_stragglers` stragglers among `compute_nodes`. The same
    /// `(seed, shape)` always yields the same schedule.
    pub fn random(
        seed: u64,
        data_nodes: usize,
        compute_nodes: usize,
        horizon: SimDuration,
    ) -> FaultSchedule {
        let mut rng = crate::rng::stream_rng(seed, "fault-schedule");
        let mut s = FaultSchedule::none();
        let span = horizon.as_nanos().max(1);
        // Crashes: each node beyond the first has a 1-in-3 chance, so at
        // least one data node always survives.
        for node in 1..data_nodes {
            if rng.gen_bool(1.0 / 3.0) {
                let at = SimTime::from_nanos(rng.gen_range(0..span));
                s = s.crash(node, at);
            }
        }
        // Zero to two degradation windows.
        for _ in 0..rng.gen_range(0usize..3) {
            let a = rng.gen_range(0..span);
            let b = rng.gen_range(0..span);
            let (from, until) = (a.min(b), a.max(b));
            if from < until {
                s = s.degrade(
                    SimTime::from_nanos(from),
                    SimTime::from_nanos(until),
                    rng.gen_range(0.2..1.0),
                );
            }
        }
        // Stragglers: each compute node has a 1-in-4 chance.
        for node in 0..compute_nodes {
            if rng.gen_bool(0.25) {
                s = s.straggler(node, rng.gen_range(1.5..6.0));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_nanos(secs * 1_000_000_000)
    }

    #[test]
    fn empty_schedule_reports_nothing() {
        let s = FaultSchedule::none();
        assert!(s.is_empty());
        assert!(!s.is_crashed(0, SimTime::MAX));
        assert_eq!(s.bandwidth_factor(SimTime::ZERO), 1.0);
        assert_eq!(s.slowdown(5), 1.0);
        assert!(s.events().is_empty());
    }

    #[test]
    fn crashes_are_fail_stop() {
        let s = FaultSchedule::none().crash(2, t(10));
        assert!(!s.is_crashed(2, t(9)));
        assert!(s.is_crashed(2, t(10)));
        assert!(s.is_crashed(2, SimTime::MAX));
        assert!(!s.is_crashed(0, SimTime::MAX));
        assert_eq!(s.crashed_nodes(t(10)), vec![2]);
        assert!(s.crashed_nodes(t(9)).is_empty());
    }

    #[test]
    fn degradation_windows_compound() {
        let s = FaultSchedule::none().degrade(t(0), t(100), 0.5).degrade(t(50), t(60), 0.5);
        assert_eq!(s.bandwidth_factor(t(10)), 0.5);
        assert_eq!(s.bandwidth_factor(t(55)), 0.25);
        assert_eq!(s.bandwidth_factor(t(100)), 1.0); // end exclusive
    }

    #[test]
    fn stragglers_slow_only_their_node() {
        let s = FaultSchedule::none().straggler(1, 3.0);
        assert_eq!(s.slowdown(1), 3.0);
        assert_eq!(s.slowdown(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "slower, not faster")]
    fn negative_slowdown_rejected() {
        let _ = FaultSchedule::none().straggler(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "degradation factor")]
    fn zero_degradation_factor_rejected() {
        let _ = FaultSchedule::none().degrade(t(0), t(1), 0.0);
    }

    #[test]
    fn events_are_time_sorted() {
        let s = FaultSchedule::none().degrade(t(5), t(20), 0.5).crash(0, t(1)).crash(1, t(30));
        let times: Vec<SimTime> = s.events().iter().map(|&(t, _)| t).collect();
        assert_eq!(times, vec![t(1), t(5), t(20), t(30)]);
    }

    #[test]
    fn injection_drives_an_engine() {
        let s = FaultSchedule::none().crash(0, t(3)).degrade(t(1), t(5), 0.5);
        let mut eng = Engine::new();
        s.inject_into(&mut eng);
        let mut log = Vec::new();
        eng.run(|e, ev| {
            log.push((e.now(), matches!(ev, FaultEvent::Crash(_))));
        });
        assert_eq!(log.len(), 3);
        assert_eq!(log[1], (t(3), true));
    }

    #[test]
    fn random_schedules_are_seed_deterministic() {
        let h = SimDuration::from_secs(100);
        let a = FaultSchedule::random(7, 8, 16, h);
        let b = FaultSchedule::random(7, 8, 16, h);
        assert_eq!(a, b);
        let c = FaultSchedule::random(8, 8, 16, h);
        assert_ne!(a, c);
    }

    #[test]
    fn random_schedules_always_leave_a_survivor() {
        let h = SimDuration::from_secs(100);
        for seed in 0..50 {
            let s = FaultSchedule::random(seed, 4, 8, h);
            let dead = s.crashed_nodes(SimTime::MAX);
            assert!(dead.len() < 4, "seed {seed} killed every data node");
            assert!(!dead.contains(&0), "node 0 must survive");
            for w in &s.degradations {
                assert!(w.factor > 0.0 && w.factor <= 1.0);
            }
            for st in &s.stragglers {
                assert!(st.slowdown >= 1.0);
            }
        }
    }

    #[test]
    fn schedules_serialize_round_trip() {
        let s = FaultSchedule::none().crash(1, t(10)).degrade(t(5), t(20), 0.25).straggler(3, 2.5);
        let v = serde::Serialize::to_value(&s);
        let back: FaultSchedule = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, s);
    }
}
