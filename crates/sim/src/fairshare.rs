//! Max-min fair sharing of capacitated resources among flows.
//!
//! The data-movement phases of the middleware (repository disk backplane,
//! data-node NICs, the wide-area link, compute-node NICs) are modeled as a
//! set of capacitated resources. Each *flow* (e.g. "all chunks data node 2
//! sends to compute node 5 this pass") has a byte demand, an optional
//! per-flow rate cap, and traverses a set of resources. Bandwidth is
//! allocated by **max-min fairness with progressive filling**: all active
//! flows' rates rise together until a flow hits its cap or a resource
//! saturates, at which point the constrained flows freeze and the rest
//! continue — the standard fluid model of TCP-fair sharing.
//!
//! The simulation is event-driven in the fluid sense: rates only change at
//! flow arrivals and completions, so the schedule advances from event to
//! event, draining demand at the current rates.

use crate::time::SimTime;

/// Identifies a capacitated resource within one [`FairShareSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId(pub usize);

/// A flow to be scheduled.
#[derive(Debug, Clone)]
pub struct Flow {
    /// When the flow becomes eligible to transmit.
    pub arrival: SimTime,
    /// Bytes (or work units) to move; must be positive and finite.
    pub demand: f64,
    /// Per-flow rate ceiling (bytes/sec); `f64::INFINITY` for "no cap".
    pub rate_cap: f64,
    /// Resources the flow consumes capacity on.
    pub resources: Vec<ResourceId>,
}

/// When a flow started and finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowOutcome {
    /// Equal to the flow's arrival (flows start transmitting immediately,
    /// possibly at a low rate).
    pub start: SimTime,
    /// When the last byte drained.
    pub finish: SimTime,
}

/// A one-shot max-min fair-share scheduling problem.
///
/// ```
/// use fg_sim::{FairShareSim, Flow, ResourceId, SimTime};
///
/// // Two flows share a 100 B/s link; one is capped at 20 B/s, so the
/// // other gets the remaining 80 (max-min fairness).
/// let sim = FairShareSim::new(vec![100.0]);
/// let out = sim.run(&[
///     Flow { arrival: SimTime::ZERO, demand: 200.0, rate_cap: 20.0,
///            resources: vec![ResourceId(0)] },
///     Flow { arrival: SimTime::ZERO, demand: 800.0, rate_cap: f64::INFINITY,
///            resources: vec![ResourceId(0)] },
/// ]);
/// assert!((out[0].finish.as_secs_f64() - 10.0).abs() < 1e-9);
/// assert!((out[1].finish.as_secs_f64() - 10.0).abs() < 1e-9);
/// ```
pub struct FairShareSim {
    capacities: Vec<f64>,
}

impl FairShareSim {
    /// Create a simulator over resources with the given capacities
    /// (bytes/sec); each must be positive and finite.
    pub fn new(capacities: Vec<f64>) -> Self {
        assert!(
            capacities.iter().all(|&c| c.is_finite() && c > 0.0),
            "resource capacities must be positive and finite: {capacities:?}"
        );
        FairShareSim { capacities }
    }

    /// Number of resources.
    pub fn resources(&self) -> usize {
        self.capacities.len()
    }

    /// Compute the instantaneous max-min fair rates for the given active
    /// flows (identified by index into `flows`). Progressive filling:
    /// all rates rise uniformly; a flow freezes when it hits its own cap or
    /// when one of its resources saturates.
    ///
    /// This is the allocation [`run`](Self::run) applies between events;
    /// it is public so that callers embedding the fluid model in their
    /// own event loop (e.g. a job scheduler stretching transfer phases
    /// under contention) can ask "at what rate does each of these
    /// currently-active flows drain right now?" without committing to
    /// this simulator's arrival/completion bookkeeping. Returned rates
    /// are indexed like `active`.
    pub fn instantaneous_rates(&self, flows: &[Flow], active: &[usize]) -> Vec<f64> {
        self.fair_rates(flows, active)
    }

    fn fair_rates(&self, flows: &[Flow], active: &[usize]) -> Vec<f64> {
        let mut rates = vec![0.0f64; active.len()];
        let mut frozen = vec![false; active.len()];
        let mut remaining_cap = self.capacities.clone();
        // Count of unfrozen flows using each resource.
        let mut users = vec![0usize; self.capacities.len()];
        for (&fi, _) in active.iter().zip(rates.iter()) {
            for r in &flows[fi].resources {
                users[r.0] += 1;
            }
        }
        let mut unfrozen = active.len();
        while unfrozen > 0 {
            // Largest uniform rate increment before a constraint binds.
            let mut delta = f64::INFINITY;
            for (r, (&cap, &n)) in remaining_cap.iter().zip(users.iter()).enumerate() {
                let _ = r;
                if n > 0 {
                    delta = delta.min(cap / n as f64);
                }
            }
            for (ai, &fi) in active.iter().enumerate() {
                if !frozen[ai] {
                    delta = delta.min(flows[fi].rate_cap - rates[ai]);
                }
            }
            assert!(
                delta.is_finite() && delta >= 0.0,
                "progressive filling produced a bad increment: {delta}"
            );
            // Apply the increment and charge the resources.
            for (ai, &fi) in active.iter().enumerate() {
                if !frozen[ai] {
                    rates[ai] += delta;
                    for r in &flows[fi].resources {
                        remaining_cap[r.0] -= delta;
                    }
                }
            }
            // Freeze flows that hit their cap or sit on a saturated resource.
            let eps = 1e-9;
            for (ai, &fi) in active.iter().enumerate() {
                if frozen[ai] {
                    continue;
                }
                let capped = rates[ai] >= flows[fi].rate_cap - eps * flows[fi].rate_cap.max(1.0);
                let saturated = flows[fi]
                    .resources
                    .iter()
                    .any(|r| remaining_cap[r.0] <= eps * self.capacities[r.0]);
                if capped || saturated {
                    frozen[ai] = true;
                    unfrozen -= 1;
                    for r in &flows[fi].resources {
                        users[r.0] -= 1;
                    }
                }
            }
        }
        rates
    }

    /// Run the fluid schedule to completion and return per-flow outcomes
    /// (indexed like `flows`).
    pub fn run(&self, flows: &[Flow]) -> Vec<FlowOutcome> {
        for f in flows {
            assert!(
                f.demand.is_finite() && f.demand > 0.0,
                "flow demand must be positive and finite: {}",
                f.demand
            );
            assert!(f.rate_cap > 0.0, "flow rate cap must be positive");
            for r in &f.resources {
                assert!(r.0 < self.capacities.len(), "unknown resource {:?}", r);
            }
        }
        let n = flows.len();
        let mut remaining: Vec<f64> = flows.iter().map(|f| f.demand).collect();
        let mut outcome: Vec<FlowOutcome> =
            flows.iter().map(|f| FlowOutcome { start: f.arrival, finish: SimTime::MAX }).collect();
        // Arrival order: by time, index as tie-break (deterministic).
        let mut arrivals: Vec<usize> = (0..n).collect();
        arrivals.sort_by_key(|&i| (flows[i].arrival, i));
        let mut next_arrival = 0usize;
        let mut active: Vec<usize> = Vec::new();
        let mut now = 0.0f64; // seconds, fluid clock

        while next_arrival < n || !active.is_empty() {
            // Admit flows that have arrived by `now`.
            while next_arrival < n
                && flows[arrivals[next_arrival]].arrival.as_secs_f64() <= now + 1e-15
            {
                active.push(arrivals[next_arrival]);
                next_arrival += 1;
            }
            if active.is_empty() {
                // Jump to the next arrival.
                now = flows[arrivals[next_arrival]].arrival.as_secs_f64();
                continue;
            }
            let rates = self.fair_rates(flows, &active);
            // Horizon: the earliest of (next arrival, earliest completion).
            let mut horizon = f64::INFINITY;
            if next_arrival < n {
                horizon = flows[arrivals[next_arrival]].arrival.as_secs_f64() - now;
            }
            for (ai, &fi) in active.iter().enumerate() {
                let _ = fi;
                if rates[ai] > 0.0 {
                    horizon = horizon.min(remaining[active[ai]] / rates[ai]);
                }
            }
            assert!(
                horizon.is_finite() && horizon >= 0.0,
                "fluid schedule stalled: some active flow has zero rate and \
                 no arrival is pending (now={now}, active={active:?})"
            );
            // Drain demand over the horizon.
            now += horizon;
            let mut still_active = Vec::with_capacity(active.len());
            for (ai, &fi) in active.iter().enumerate() {
                remaining[fi] -= rates[ai] * horizon;
                let done = remaining[fi] <= 1e-9 * flows[fi].demand;
                if done {
                    outcome[fi].finish = SimTime::from_secs_f64(now);
                } else {
                    still_active.push(fi);
                }
            }
            active = still_active;
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const INF: f64 = f64::INFINITY;

    fn flow(arrival_s: f64, demand: f64, cap: f64, res: &[usize]) -> Flow {
        Flow {
            arrival: SimTime::from_secs_f64(arrival_s),
            demand,
            rate_cap: cap,
            resources: res.iter().map(|&r| ResourceId(r)).collect(),
        }
    }

    fn secs(t: SimTime) -> f64 {
        t.as_secs_f64()
    }

    #[test]
    fn single_flow_runs_at_capacity() {
        let sim = FairShareSim::new(vec![100.0]);
        let out = sim.run(&[flow(0.0, 500.0, INF, &[0])]);
        assert!((secs(out[0].finish) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn single_flow_respects_own_cap() {
        let sim = FairShareSim::new(vec![100.0]);
        let out = sim.run(&[flow(0.0, 500.0, 50.0, &[0])]);
        assert!((secs(out[0].finish) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn two_equal_flows_split_the_link() {
        let sim = FairShareSim::new(vec![100.0]);
        let out = sim.run(&[flow(0.0, 500.0, INF, &[0]), flow(0.0, 500.0, INF, &[0])]);
        // Each gets 50 B/s: both finish at t=10.
        for o in &out {
            assert!((secs(o.finish) - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn max_min_gives_leftover_to_uncapped_flow() {
        let sim = FairShareSim::new(vec![100.0]);
        // Flow 0 capped at 20: flow 1 gets the remaining 80.
        let out = sim.run(&[flow(0.0, 200.0, 20.0, &[0]), flow(0.0, 800.0, INF, &[0])]);
        assert!((secs(out[0].finish) - 10.0).abs() < 1e-9);
        assert!((secs(out[1].finish) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn completion_releases_bandwidth() {
        let sim = FairShareSim::new(vec![100.0]);
        // Both start at 50 B/s; flow 0 finishes at t=1 (demand 50);
        // flow 1 has 450 left and then runs alone at 100 B/s: t=5.5.
        let out = sim.run(&[flow(0.0, 50.0, INF, &[0]), flow(0.0, 500.0, INF, &[0])]);
        assert!((secs(out[0].finish) - 1.0).abs() < 1e-9);
        assert!((secs(out[1].finish) - 5.5).abs() < 1e-9);
    }

    #[test]
    fn late_arrival_shares_from_its_arrival() {
        let sim = FairShareSim::new(vec![100.0]);
        // Flow 0 alone until t=2 (200 done), then both at 50 B/s.
        let out = sim.run(&[flow(0.0, 400.0, INF, &[0]), flow(2.0, 100.0, INF, &[0])]);
        // Flow 0: 200 left at t=2 at 50 B/s => finishes t=6... but flow 1
        // finishes first: 100 at 50 B/s => t=4, then flow 0 alone at 100:
        // at t=4 flow 0 has 100 left => t=5.
        assert!((secs(out[1].finish) - 4.0).abs() < 1e-9);
        assert!((secs(out[0].finish) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn two_resource_path_takes_the_tighter_bottleneck() {
        let sim = FairShareSim::new(vec![100.0, 30.0]);
        let out = sim.run(&[flow(0.0, 300.0, INF, &[0, 1])]);
        assert!((secs(out[0].finish) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_flows_do_not_interfere() {
        let sim = FairShareSim::new(vec![100.0, 100.0]);
        let out = sim.run(&[flow(0.0, 100.0, INF, &[0]), flow(0.0, 100.0, INF, &[1])]);
        for o in &out {
            assert!((secs(o.finish) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn shared_wan_with_private_nics() {
        // Two senders, each with a private 100 B/s NIC, sharing a 120 B/s
        // WAN: max-min gives each 60.
        let sim = FairShareSim::new(vec![100.0, 100.0, 120.0]);
        let out = sim.run(&[flow(0.0, 600.0, INF, &[0, 2]), flow(0.0, 600.0, INF, &[1, 2])]);
        for o in &out {
            assert!((secs(o.finish) - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn asymmetric_demands_on_shared_wan() {
        // Same WAN, but sender 0 has a 40 B/s NIC: it gets 40, sender 1
        // gets the remaining 80 (capped by its own 100 NIC).
        let sim = FairShareSim::new(vec![40.0, 100.0, 120.0]);
        let out = sim.run(&[flow(0.0, 400.0, INF, &[0, 2]), flow(0.0, 800.0, INF, &[1, 2])]);
        assert!((secs(out[0].finish) - 10.0).abs() < 1e-9);
        assert!((secs(out[1].finish) - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_capacity_rejected() {
        let _ = FairShareSim::new(vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "demand must be positive")]
    fn zero_demand_rejected() {
        let sim = FairShareSim::new(vec![1.0]);
        sim.run(&[flow(0.0, 0.0, INF, &[0])]);
    }

    /// Brute-force fluid reference: time-step the same model in tiny
    /// increments and compare completion times.
    fn brute_force(capacities: &[f64], flows: &[Flow], dt: f64) -> Vec<f64> {
        let sim = FairShareSim::new(capacities.to_vec());
        let mut remaining: Vec<f64> = flows.iter().map(|f| f.demand).collect();
        let mut finish = vec![f64::NAN; flows.len()];
        let mut now = 0.0;
        let max_t = 1e5;
        while now < max_t && finish.iter().any(|f| f.is_nan()) {
            let active: Vec<usize> = (0..flows.len())
                .filter(|&i| finish[i].is_nan() && flows[i].arrival.as_secs_f64() <= now)
                .collect();
            if active.is_empty() {
                now += dt;
                continue;
            }
            let rates = sim.fair_rates(flows, &active);
            for (ai, &fi) in active.iter().enumerate() {
                remaining[fi] -= rates[ai] * dt;
                if remaining[fi] <= 0.0 {
                    finish[fi] = now + dt;
                }
            }
            now += dt;
        }
        finish
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Event-driven schedule matches a brute-force time-stepped run of
        /// the same fluid model (within step-size tolerance).
        #[test]
        fn matches_brute_force(
            caps in proptest::collection::vec(10.0f64..200.0, 1..4),
            specs in proptest::collection::vec(
                (0.0f64..5.0, 10.0f64..300.0, 0usize..4), 1..6),
        ) {
            let nres = caps.len();
            let flows: Vec<Flow> = specs
                .iter()
                .map(|&(arr, dem, seed)| {
                    let r = seed % nres;
                    flow(arr, dem, INF, &[r])
                })
                .collect();
            let sim = FairShareSim::new(caps.clone());
            let fast = sim.run(&flows);
            let slow = brute_force(&caps, &flows, 0.002);
            for (o, s) in fast.iter().zip(slow.iter()) {
                prop_assert!(
                    (secs(o.finish) - s).abs() < 0.05,
                    "event-driven {} vs brute {}", secs(o.finish), s
                );
            }
        }

        /// Multi-resource paths: the event-driven schedule matches the
        /// brute-force reference when flows traverse two resources.
        #[test]
        fn matches_brute_force_on_paths(
            caps in proptest::collection::vec(10.0f64..200.0, 2..5),
            specs in proptest::collection::vec(
                (0.0f64..5.0, 10.0f64..300.0, 0usize..6, 1usize..6), 1..6),
        ) {
            let nres = caps.len();
            let flows: Vec<Flow> = specs
                .iter()
                .map(|&(arr, dem, a, b)| {
                    let r1 = a % nres;
                    let r2 = (a + b) % nres;
                    let mut f = flow(arr, dem, INF, &[r1]);
                    if r2 != r1 {
                        f.resources.push(ResourceId(r2));
                    }
                    f
                })
                .collect();
            let sim = FairShareSim::new(caps.clone());
            let fast = sim.run(&flows);
            let slow = brute_force(&caps, &flows, 0.002);
            for (o, s) in fast.iter().zip(slow.iter()) {
                prop_assert!(
                    (secs(o.finish) - s).abs() < 0.05,
                    "event-driven {} vs brute {}", secs(o.finish), s
                );
            }
        }

        /// Work conservation and instantaneous capacity: replaying the
        /// piecewise-constant rate schedule (active sets change only at
        /// arrivals and completions) through the public
        /// `instantaneous_rates`, (a) no resource's allocated rate sum
        /// ever exceeds its capacity, and (b) integrating each flow's
        /// rate over its lifetime drains exactly its demand — the fluid
        /// model neither loses nor invents bytes.
        #[test]
        fn rates_conserve_work_and_respect_capacity(
            caps in proptest::collection::vec(10.0f64..200.0, 1..4),
            specs in proptest::collection::vec(
                (0.0f64..5.0, 10.0f64..300.0, 0usize..6, 1usize..6, 10.0f64..500.0), 1..8),
        ) {
            let nres = caps.len();
            let flows: Vec<Flow> = specs
                .iter()
                .map(|&(arr, dem, a, b, cap)| {
                    let r1 = a % nres;
                    let r2 = (a + b) % nres;
                    let mut f = flow(arr, dem, cap, &[r1]);
                    if r2 != r1 {
                        f.resources.push(ResourceId(r2));
                    }
                    f
                })
                .collect();
            let sim = FairShareSim::new(caps.clone());
            let out = sim.run(&flows);
            // Event instants: every arrival and every completion.
            let mut events: Vec<f64> = flows
                .iter()
                .map(|f| f.arrival.as_secs_f64())
                .chain(out.iter().map(|o| secs(o.finish)))
                .collect();
            events.sort_by(f64::total_cmp);
            events.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
            let mut drained = vec![0.0f64; flows.len()];
            for w in events.windows(2) {
                let (t0, t1) = (w[0], w[1]);
                if t1 - t0 < 1e-12 {
                    continue;
                }
                let active: Vec<usize> = (0..flows.len())
                    .filter(|&i| {
                        flows[i].arrival.as_secs_f64() <= t0 + 1e-9
                            && secs(out[i].finish) > t0 + 1e-9
                    })
                    .collect();
                if active.is_empty() {
                    continue;
                }
                let rates = sim.instantaneous_rates(&flows, &active);
                // (a) capacity holds at this instant, per resource.
                for (r, &cap) in caps.iter().enumerate() {
                    let load: f64 = active
                        .iter()
                        .zip(rates.iter())
                        .filter(|(&fi, _)| flows[fi].resources.contains(&ResourceId(r)))
                        .map(|(_, &rate)| rate)
                        .sum();
                    prop_assert!(
                        load <= cap * (1.0 + 1e-6),
                        "resource {r} oversubscribed: {load} > {cap} at t={t0}"
                    );
                }
                for (ai, &fi) in active.iter().enumerate() {
                    drained[fi] += rates[ai] * (t1 - t0);
                }
            }
            // (b) every flow's integral equals its demand.
            for (f, d) in flows.iter().zip(drained.iter()) {
                prop_assert!(
                    (d - f.demand).abs() <= 1e-6 * f.demand.max(1.0),
                    "work not conserved: drained {d} of demand {}", f.demand
                );
            }
        }

        /// No flow finishes before its physically minimal time, and every
        /// resource's aggregate throughput constraint holds in aggregate.
        #[test]
        fn physical_lower_bounds_hold(
            caps in proptest::collection::vec(10.0f64..200.0, 1..4),
            specs in proptest::collection::vec(
                (0.0f64..5.0, 10.0f64..300.0, 0usize..4, 10.0f64..500.0), 1..8),
        ) {
            let nres = caps.len();
            let flows: Vec<Flow> = specs
                .iter()
                .map(|&(arr, dem, seed, cap)| flow(arr, dem, cap, &[seed % nres]))
                .collect();
            let sim = FairShareSim::new(caps.clone());
            let out = sim.run(&flows);
            for (f, o) in flows.iter().zip(out.iter()) {
                let min_rate_cap = f.rate_cap.min(
                    f.resources.iter().map(|r| caps[r.0]).fold(INF, f64::min));
                let min_time = f.demand / min_rate_cap;
                prop_assert!(
                    secs(o.finish) + 1e-6 >= f.arrival.as_secs_f64() + min_time,
                    "flow finished impossibly fast"
                );
            }
            // Aggregate per-resource: total bytes through r can't exceed
            // cap_r * (makespan - earliest arrival touching r).
            for (r, &cap) in caps.iter().enumerate() {
                let touching: Vec<usize> = (0..flows.len())
                    .filter(|&i| flows[i].resources.contains(&ResourceId(r)))
                    .collect();
                if touching.is_empty() { continue; }
                let bytes: f64 = touching.iter().map(|&i| flows[i].demand).sum();
                let first = touching.iter()
                    .map(|&i| flows[i].arrival.as_secs_f64())
                    .fold(INF, f64::min);
                let last = touching.iter()
                    .map(|&i| secs(out[i].finish))
                    .fold(0.0, f64::max);
                prop_assert!(bytes <= cap * (last - first) * (1.0 + 1e-6) + 1e-6);
            }
        }
    }
}
