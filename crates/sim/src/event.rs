//! A generic future-event list.
//!
//! Events are ordered by timestamp; ties are broken by insertion order
//! (FIFO), which keeps simulations deterministic when many events share an
//! instant — common here because phase-based execution releases whole
//! batches of chunk transfers at the same virtual time.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // and the lowest sequence number wins among equal timestamps.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedule `payload` at instant `at`.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(42), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(42)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    proptest! {
        #[test]
        fn always_nondecreasing(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut last = SimTime::ZERO;
            let mut seen = 0;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
                seen += 1;
            }
            prop_assert_eq!(seen, times.len());
        }

        #[test]
        fn fifo_within_each_timestamp(times in proptest::collection::vec(0u64..20, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut last_seq_at: std::collections::HashMap<u64, usize> = Default::default();
            while let Some((t, seq)) = q.pop() {
                if let Some(&prev) = last_seq_at.get(&t.as_nanos()) {
                    prop_assert!(seq > prev);
                }
                last_seq_at.insert(t.as_nanos(), seq);
            }
        }
    }
}
