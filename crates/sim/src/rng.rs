//! Seeded RNG construction helpers.
//!
//! Every stochastic choice in the reproduction (dataset generation, planted
//! features, noise) flows through a seeded [`rand::rngs::StdRng`], derived
//! from a user seed plus a *stream label*, so adding a new consumer of
//! randomness never perturbs existing streams.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derive a deterministic RNG from a base seed and a stream label.
///
/// The label is folded into the seed with FNV-1a so distinct labels give
/// statistically independent streams.
pub fn stream_rng(seed: u64, label: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(seed ^ h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u32> =
            stream_rng(7, "x").sample_iter(rand::distributions::Standard).take(8).collect();
        let b: Vec<u32> =
            stream_rng(7, "x").sample_iter(rand::distributions::Standard).take(8).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let a: Vec<u32> =
            stream_rng(7, "x").sample_iter(rand::distributions::Standard).take(8).collect();
        let b: Vec<u32> =
            stream_rng(7, "y").sample_iter(rand::distributions::Standard).take(8).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<u32> =
            stream_rng(7, "x").sample_iter(rand::distributions::Standard).take(8).collect();
        let b: Vec<u32> =
            stream_rng(8, "x").sample_iter(rand::distributions::Standard).take(8).collect();
        assert_ne!(a, b);
    }
}
