//! # fg-cluster — grid resource models
//!
//! The paper's testbed was two physical clusters (700 MHz Pentium III
//! machines on Myrinet; dual 2.4 GHz Opteron 250 machines on Infiniband)
//! plus a wide-area path between a data repository and a compute site.
//! This crate models those resources parametrically:
//!
//! * [`machine`] — per-machine capability: operation-class throughputs
//!   (floating point / memory / compare-and-branch), disk bandwidth and
//!   seek, and NIC bandwidth. Heterogeneity across clusters emerges from
//!   different per-class throughputs, which is why per-application compute
//!   scaling factors differ (§5.4 of the paper).
//! * [`site`] — repository sites (data nodes + shared storage backplane),
//!   compute sites (compute nodes + interconnect + middleware overheads),
//!   and the WAN between them.
//! * [`config`] — parallel configurations `(n data nodes, c compute
//!   nodes)` with the middleware's `c >= n` rule, and full deployments
//!   (replica site + compute site + WAN + configuration) that the resource
//!   selection framework enumerates.

#![warn(missing_docs)]

pub mod config;
pub mod machine;
pub mod site;

pub use config::{CacheSite, Configuration, Deployment, DeploymentRef};
pub use machine::{MachineSpec, OpClass, OpCounts};
pub use site::{ComputeSite, MiddlewareCosts, RepositorySite, Wan};
