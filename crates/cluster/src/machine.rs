//! Machine capability models.
//!
//! Compute cost in the simulation comes from *metered real execution*:
//! the data-mining kernels run for real and count the operations they
//! perform, split into three classes. Virtual compute time is then
//! `sum_i counts[i] / throughput[i]`. Two machine types with different
//! per-class throughput vectors therefore speed applications up by
//! *different* factors depending on each application's operation mix —
//! exactly the effect §5.4 of the paper reports (compute scaling factors
//! ranging from 0.233 for kNN to 0.370 for vortex detection).

use fg_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Classes of metered operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Floating-point arithmetic (distance computations, covariance
    /// updates, curl stencils, ...).
    Flop,
    /// Memory traffic (streaming element loads, buffer copies, catalog
    /// lookups, ...).
    Mem,
    /// Compares and branches (heap maintenance, threshold tests,
    /// union-find chasing, ...).
    Cmp,
}

/// Operation counts per class; the unit of metered work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OpCounts {
    /// Floating-point operations.
    pub flop: u64,
    /// Memory operations.
    pub mem: u64,
    /// Compare/branch operations.
    pub cmp: u64,
}

impl OpCounts {
    /// No work.
    pub const ZERO: OpCounts = OpCounts { flop: 0, mem: 0, cmp: 0 };

    /// Total operations across classes.
    pub fn total(&self) -> u64 {
        self.flop + self.mem + self.cmp
    }

    /// Scale all counts by a non-negative factor (used to inflate metered
    /// work when running at reduced dataset scale).
    pub fn scaled(&self, factor: f64) -> OpCounts {
        assert!(factor.is_finite() && factor >= 0.0);
        let s = |v: u64| ((v as f64) * factor).round() as u64;
        OpCounts { flop: s(self.flop), mem: s(self.mem), cmp: s(self.cmp) }
    }
}

impl Add for OpCounts {
    type Output = OpCounts;
    fn add(self, rhs: OpCounts) -> OpCounts {
        OpCounts { flop: self.flop + rhs.flop, mem: self.mem + rhs.mem, cmp: self.cmp + rhs.cmp }
    }
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, rhs: OpCounts) {
        *self = *self + rhs;
    }
}

/// Capability description of one machine type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Human-readable type name (used in reports and profiles).
    pub name: String,
    /// Processors per node. FREERIDE-G supports shared-memory execution
    /// within a node ("distributed memory and shared memory systems, as
    /// well as cluster of SMPs, starting from a common high-level
    /// interface"); chunks assigned to a node are folded by `cores`
    /// workers into replicated sub-objects, merged node-locally.
    pub cores: usize,
    /// Sustained floating-point throughput per core, ops/sec.
    pub flop_per_sec: f64,
    /// Sustained memory-operation throughput per core, ops/sec — shared
    /// memory bus contention is modeled separately (see
    /// [`MachineSpec::compute_time_on_cores`]).
    pub mem_per_sec: f64,
    /// Sustained compare/branch throughput per core, ops/sec.
    pub cmp_per_sec: f64,
    /// Sequential disk bandwidth, bytes/sec (local disk of this machine;
    /// used for repository reads and compute-side cache reads).
    pub disk_bw: f64,
    /// Per-request disk positioning overhead.
    pub disk_seek: SimDuration,
    /// NIC bandwidth, bytes/sec.
    pub nic_bw: f64,
}

/// Memory-bus contention: each additional concurrently active core on a
/// node costs this fraction of a core's memory throughput.
pub const MEM_CONTENTION: f64 = 0.35;

impl MachineSpec {
    /// Virtual time to execute the given metered work on one core with no
    /// contention.
    pub fn compute_time(&self, ops: &OpCounts) -> SimDuration {
        self.compute_time_on_cores(ops, 1)
    }

    /// Virtual time to execute the given metered work on one core while
    /// `active_cores` cores of the node are busy: flop and compare units
    /// are private, but the memory bus is shared, degrading the memory
    /// class by `1 + MEM_CONTENTION * (active - 1)` — the reason SMP
    /// speedups are sub-linear for memory-bound reductions.
    pub fn compute_time_on_cores(&self, ops: &OpCounts, active_cores: usize) -> SimDuration {
        assert!(active_cores >= 1 && active_cores <= self.cores.max(1));
        let contention = 1.0 + MEM_CONTENTION * (active_cores as f64 - 1.0);
        let secs = ops.flop as f64 / self.flop_per_sec
            + ops.mem as f64 * contention / self.mem_per_sec
            + ops.cmp as f64 / self.cmp_per_sec;
        SimDuration::from_secs_f64(secs)
    }

    /// The profile cluster of the paper: 700 MHz Pentium machines with
    /// Myrinet LANai 7.0. Throughputs are plausible sustained rates for
    /// that era, not microbenchmarks; only their *ratios* to the Opteron
    /// spec matter for the heterogeneous-prediction experiments.
    pub fn pentium_700() -> MachineSpec {
        MachineSpec {
            name: "pentium-700".into(),
            cores: 1,
            flop_per_sec: 110e6,
            mem_per_sec: 130e6,
            cmp_per_sec: 220e6,
            disk_bw: 25e6,
            disk_seek: SimDuration::from_micros(800),
            nic_bw: 120e6, // Myrinet LANai ~1 Gb/s class
        }
    }

    /// The target cluster of §5.4: **dual-processor** 2.4 GHz Opteron 250
    /// machines with Mellanox Infiniband (1 Gb). Per-core rates are set so
    /// the two-core node lands at roughly the same effective throughput
    /// the heterogeneous experiments were calibrated against.
    pub fn opteron_2400() -> MachineSpec {
        MachineSpec {
            name: "opteron-2400".into(),
            cores: 2,
            flop_per_sec: 160e6,
            mem_per_sec: 132e6,
            cmp_per_sec: 560e6,
            disk_bw: 70e6,
            disk_seek: SimDuration::from_micros(500),
            nic_bw: 125e6, // 1 Gb Infiniband as configured in the paper
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_time_is_sum_over_classes() {
        let m = MachineSpec {
            name: "t".into(),
            cores: 1,
            flop_per_sec: 100.0,
            mem_per_sec: 50.0,
            cmp_per_sec: 200.0,
            disk_bw: 1.0,
            disk_seek: SimDuration::ZERO,
            nic_bw: 1.0,
        };
        let ops = OpCounts { flop: 100, mem: 50, cmp: 400 };
        // 1s + 1s + 2s
        assert_eq!(m.compute_time(&ops), SimDuration::from_secs(4));
    }

    #[test]
    fn op_counts_accumulate() {
        let mut a = OpCounts { flop: 1, mem: 2, cmp: 3 };
        a += OpCounts { flop: 10, mem: 20, cmp: 30 };
        assert_eq!(a, OpCounts { flop: 11, mem: 22, cmp: 33 });
        assert_eq!(a.total(), 66);
    }

    #[test]
    fn scaling_rounds_to_nearest() {
        let a = OpCounts { flop: 3, mem: 0, cmp: 1 };
        let s = a.scaled(2.5);
        assert_eq!(s, OpCounts { flop: 8, mem: 0, cmp: 3 }); // 7.5->8, 2.5->3 (round half up)
    }

    #[test]
    fn opteron_is_faster_in_every_class() {
        let a = MachineSpec::pentium_700();
        let b = MachineSpec::opteron_2400();
        assert!(b.flop_per_sec > a.flop_per_sec);
        assert!(b.mem_per_sec > a.mem_per_sec);
        assert!(b.cmp_per_sec > a.cmp_per_sec);
        assert!(b.disk_bw > a.disk_bw);
    }

    #[test]
    fn scaling_factor_depends_on_op_mix() {
        // The §5.4 effect: a cmp-heavy mix speeds up more on the Opteron
        // (which has a disproportionately better branch unit) than a
        // flop-heavy mix.
        let a = MachineSpec::pentium_700();
        let b = MachineSpec::opteron_2400();
        let cmp_heavy = OpCounts { flop: 10, mem: 10, cmp: 1000 };
        let flop_heavy = OpCounts { flop: 1000, mem: 10, cmp: 10 };
        let ratio =
            |ops: &OpCounts| b.compute_time(ops).as_secs_f64() / a.compute_time(ops).as_secs_f64();
        assert!(ratio(&cmp_heavy) < ratio(&flop_heavy));
    }
}
