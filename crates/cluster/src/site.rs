//! Sites and the wide-area path between them.

use crate::machine::MachineSpec;
use fg_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// A data repository site: up to `max_nodes` identical data-hosting
/// machines behind a shared storage backplane.
///
/// The backplane is what makes data retrieval scale *sub-linearly* past a
/// few nodes (observed in the paper for molecular defect detection: linear
/// speedup at 2 and 4 data nodes, sub-linear beyond) — each node reads its
/// local disk at `machine.disk_bw`, but the aggregate across all
/// concurrently-reading nodes is capped at `backplane_bw`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepositorySite {
    /// Site name (used to identify replicas in reports).
    pub name: String,
    /// The machine type of every data node at the site.
    pub machine: MachineSpec,
    /// Upper bound on usable data nodes.
    pub max_nodes: usize,
    /// Aggregate storage-backplane read bandwidth, bytes/sec.
    pub backplane_bw: f64,
}

impl RepositorySite {
    /// A repository built from Pentium-class nodes whose backplane
    /// sustains about seven and a half concurrent full-rate disk streams
    /// (mild sub-linear retrieval scaling at eight nodes, as the paper
    /// observes for the defect application).
    pub fn pentium_repository(name: &str, max_nodes: usize) -> RepositorySite {
        let machine = MachineSpec::pentium_700();
        RepositorySite {
            name: name.into(),
            backplane_bw: machine.disk_bw * 7.5,
            machine,
            max_nodes,
        }
    }

    /// A repository built from Opteron-class nodes (same backplane
    /// provisioning rule).
    pub fn opteron_repository(name: &str, max_nodes: usize) -> RepositorySite {
        let machine = MachineSpec::opteron_2400();
        RepositorySite {
            name: name.into(),
            backplane_bw: machine.disk_bw * 7.5,
            machine,
            max_nodes,
        }
    }
}

/// Fixed per-operation middleware overheads.
///
/// These model the client-server bookkeeping of a 2007-era TCP/XDR grid
/// middleware: message handshakes, (de)serialization, and per-chunk
/// dispatch. They are what the paper's *no communication* compute model
/// ignores and its *reduction communication* / *global reduction* models
/// progressively capture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MiddlewareCosts {
    /// Per-chunk handling on a compute node (receive, enqueue, hand to the
    /// local reduction), charged to compute time.
    pub chunk_dispatch: SimDuration,
    /// Per-reduction-object handling at the master during the global
    /// reduction phase (receive buffer, deserialize, merge bookkeeping),
    /// charged to `T_g`.
    pub obj_handling: SimDuration,
    /// Per-message middleware latency for reduction-object communication
    /// (the `l` of `T_ro = w*r + l`): connection setup, marshalling, and
    /// acknowledgement of one object transfer. Charged to `T_ro`.
    pub gather_latency: SimDuration,
    /// Per-hop latency of the state broadcast tree; broadcasts push
    /// pre-serialized state without the per-object unmarshalling of the
    /// gather path, so this is much smaller than `gather_latency`.
    pub bcast_latency: SimDuration,
    /// Per-chunk overhead of writing to / reading from the local cache on
    /// multi-pass applications, charged to disk time.
    pub cache_chunk_overhead: SimDuration,
}

impl Default for MiddlewareCosts {
    fn default() -> Self {
        MiddlewareCosts {
            chunk_dispatch: SimDuration::from_micros(900),
            obj_handling: SimDuration::from_micros(500),
            gather_latency: SimDuration::from_millis(15),
            bcast_latency: SimDuration::from_millis(1),
            cache_chunk_overhead: SimDuration::from_micros(400),
        }
    }
}

/// A compute site: up to `max_nodes` identical machines on a local
/// interconnect, running the FREERIDE-G compute server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeSite {
    /// Site name.
    pub name: String,
    /// The machine type of every compute node.
    pub machine: MachineSpec,
    /// Upper bound on usable compute nodes.
    pub max_nodes: usize,
    /// Interconnect bandwidth for reduction-object communication,
    /// bytes/sec (the `1/w` of `T_ro = w*r + l`).
    pub interconnect_bw: f64,
    /// Scratch storage available for the chunk cache on each compute
    /// node, bytes. Multi-pass applications whose per-node share exceeds
    /// this cannot cache locally and fall back to a non-local caching
    /// site (§2.1: "if sufficient storage is not available at the site
    /// where computations are performed, data may be cached at a
    /// non-local site") or to re-fetching from the origin repository.
    pub node_storage_bytes: u64,
    /// Middleware overhead constants at this site.
    pub costs: MiddlewareCosts,
}

impl ComputeSite {
    /// The paper's profile cluster: 700 MHz Pentiums on Myrinet LANai 7.0.
    pub fn pentium_myrinet(name: &str, max_nodes: usize) -> ComputeSite {
        ComputeSite {
            name: name.into(),
            machine: MachineSpec::pentium_700(),
            max_nodes,
            interconnect_bw: 100e6,
            node_storage_bytes: 64_000_000_000, // 64 GB scratch per node
            costs: MiddlewareCosts::default(),
        }
    }

    /// The paper's target cluster: 2.4 GHz Opteron 250s on 1 Gb Infiniband.
    /// Middleware overheads shrink with the faster CPU (they are mostly
    /// host processing, not wire time).
    pub fn opteron_infiniband(name: &str, max_nodes: usize) -> ComputeSite {
        ComputeSite {
            name: name.into(),
            machine: MachineSpec::opteron_2400(),
            max_nodes,
            interconnect_bw: 110e6,
            node_storage_bytes: 64_000_000_000,
            costs: MiddlewareCosts {
                chunk_dispatch: SimDuration::from_micros(350),
                obj_handling: SimDuration::from_micros(180),
                gather_latency: SimDuration::from_micros(5400),
                bcast_latency: SimDuration::from_micros(400),
                cache_chunk_overhead: SimDuration::from_micros(150),
            },
        }
    }
}

/// The wide-area path between a repository and a compute site.
///
/// `stream_bw` is the per-stream achievable bandwidth `b` of the paper's
/// model (their experiments throttled each data-communication stream
/// synthetically, which is why network time scales with both `b` and the
/// number of data nodes). `aggregate_cap`, when set, additionally caps the
/// *sum* over all concurrent streams — that violates the model's
/// assumptions and is used in ablation experiments only.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Wan {
    /// Per-stream achievable bandwidth, bytes/sec (the model's `b`).
    pub stream_bw: f64,
    /// Per-chunk transfer latency (connection + message overhead).
    pub latency: SimDuration,
    /// Optional aggregate capacity across all streams, bytes/sec.
    pub aggregate_cap: Option<f64>,
}

impl Wan {
    /// A WAN path with the given per-stream bandwidth and a 200 us
    /// per-chunk protocol latency, no aggregate cap.
    pub fn per_stream(bw: f64) -> Wan {
        Wan { stream_bw: bw, latency: SimDuration::from_micros(200), aggregate_cap: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backplane_allows_about_seven_streams() {
        let r = RepositorySite::pentium_repository("osu", 8);
        assert!((r.backplane_bw / r.machine.disk_bw - 7.5).abs() < 1e-12);
    }

    #[test]
    fn default_costs_are_modest_but_nonzero() {
        let c = MiddlewareCosts::default();
        assert!(!c.obj_handling.is_zero());
        assert!(!c.gather_latency.is_zero());
        assert!(c.chunk_dispatch < c.gather_latency);
    }

    #[test]
    fn opteron_site_has_cheaper_overheads() {
        let a = ComputeSite::pentium_myrinet("a", 16);
        let b = ComputeSite::opteron_infiniband("b", 16);
        assert!(b.costs.obj_handling < a.costs.obj_handling);
        assert!(b.costs.gather_latency < a.costs.gather_latency);
    }

    #[test]
    fn wan_constructor_sets_per_stream_bandwidth() {
        let w = Wan::per_stream(1e6);
        assert_eq!(w.stream_bw, 1e6);
        assert!(w.aggregate_cap.is_none());
    }
}
