//! Parallel configurations and deployments.

use crate::site::{ComputeSite, RepositorySite, Wan};
use serde::{Deserialize, Serialize};

/// A parallel configuration: `n` data (storage) nodes and `c` compute
/// nodes.
///
/// FREERIDE-G requires `c >= n`: its target applications are
/// compute-heavy and cannot usefully consume data arriving from more
/// nodes than are processing it (§2.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Configuration {
    /// Data (storage/retrieval) nodes, `n`.
    pub data_nodes: usize,
    /// Compute (processing) nodes, `c`.
    pub compute_nodes: usize,
}

impl Configuration {
    /// Build a configuration, enforcing `n >= 1` and `c >= n`.
    pub fn new(data_nodes: usize, compute_nodes: usize) -> Configuration {
        assert!(data_nodes >= 1, "need at least one data node");
        assert!(
            compute_nodes >= data_nodes,
            "FREERIDE-G requires compute nodes >= data nodes (got {compute_nodes} < {data_nodes})"
        );
        Configuration { data_nodes, compute_nodes }
    }

    /// The paper's evaluation grid: `n` in {1, 2, 4, 8}, `c` a power of
    /// two with `n <= c <= 16` — the x-axis of Figures 2–6.
    pub fn paper_grid() -> Vec<Configuration> {
        let mut out = Vec::new();
        for n in [1usize, 2, 4, 8] {
            let mut c = n;
            while c <= 16 {
                out.push(Configuration::new(n, c));
                c *= 2;
            }
        }
        out
    }

    /// Compact `n-c` notation used throughout the paper ("8-16").
    pub fn label(&self) -> String {
        format!("{}-{}", self.data_nodes, self.compute_nodes)
    }
}

/// A complete resource mapping alternative: which replica to read, where
/// to compute, over which WAN path, with which node counts.
///
/// The resource selection framework enumerates these and picks the one
/// with the lowest predicted execution time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deployment {
    /// The repository hosting the chosen dataset replica.
    pub repository: RepositorySite,
    /// The compute site.
    pub compute: ComputeSite,
    /// The wide-area path between them.
    pub wan: Wan,
    /// Node counts on each side.
    pub config: Configuration,
    /// Optional non-local caching site: a storage site (with its WAN
    /// path to the compute site) used for multi-pass applications when
    /// the compute nodes lack scratch storage — "a location from which
    /// it [data] can be accessed at a lower cost than the original
    /// repository" (§2.1). `None` means local caching or origin re-fetch.
    pub cache: Option<CacheSite>,
}

/// A non-local caching site and its path to the compute site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheSite {
    /// The storage site caching the chunks (its `max_nodes` data nodes
    /// serve the cached copies).
    pub site: RepositorySite,
    /// Storage nodes used at the caching site.
    pub nodes: usize,
    /// The path between the caching site and the compute site.
    pub wan: Wan,
}

impl CacheSite {
    /// Build, checking the node count against the site.
    pub fn new(site: RepositorySite, nodes: usize, wan: Wan) -> CacheSite {
        assert!(
            nodes >= 1 && nodes <= site.max_nodes,
            "cache site {} has {} nodes, asked for {nodes}",
            site.name,
            site.max_nodes
        );
        CacheSite { site, nodes, wan }
    }
}

impl Deployment {
    /// Build a deployment, checking node counts against site limits.
    pub fn new(
        repository: RepositorySite,
        compute: ComputeSite,
        wan: Wan,
        config: Configuration,
    ) -> Deployment {
        assert!(
            config.data_nodes <= repository.max_nodes,
            "replica site {} has only {} nodes, asked for {}",
            repository.name,
            repository.max_nodes,
            config.data_nodes
        );
        assert!(
            config.compute_nodes <= compute.max_nodes,
            "compute site {} has only {} nodes, asked for {}",
            compute.name,
            compute.max_nodes,
            config.compute_nodes
        );
        Deployment { repository, compute, wan, config, cache: None }
    }

    /// Attach a non-local caching site.
    pub fn with_cache(mut self, cache: CacheSite) -> Deployment {
        self.cache = Some(cache);
        self
    }

    /// Every feasible `(replica, compute-site, configuration)` combination
    /// for the given candidate sites and configurations — the search space
    /// of §3's resource allocation problem. Infeasible combinations
    /// (node counts exceeding a site, or `c < n`) are skipped.
    pub fn enumerate(
        replicas: &[(RepositorySite, Wan)],
        compute_sites: &[ComputeSite],
        configs: &[Configuration],
    ) -> Vec<Deployment> {
        let mut out = Vec::new();
        for (repo, wan) in replicas {
            for site in compute_sites {
                for cfg in configs {
                    if cfg.data_nodes <= repo.max_nodes && cfg.compute_nodes <= site.max_nodes {
                        out.push(Deployment::new(repo.clone(), site.clone(), wan.clone(), *cfg));
                    }
                }
            }
        }
        out
    }

    /// Short label for tables: `site/replica n-c`.
    pub fn label(&self) -> String {
        format!("{}@{} {}", self.compute.name, self.repository.name, self.config.label())
    }

    /// A borrowed view of this deployment (see [`DeploymentRef`]).
    pub fn as_ref(&self) -> DeploymentRef<'_> {
        DeploymentRef {
            repository: &self.repository,
            compute: &self.compute,
            stream_bw: self.wan.stream_bw,
            config: self.config,
            cache: self.cache.as_ref(),
        }
    }
}

/// A borrowed view of a candidate deployment: everything the prediction
/// model reads, without owning the sites.
///
/// [`Deployment`] owns its `RepositorySite`/`ComputeSite` (each holding
/// heap-allocated names and machine specs), so enumerating one per
/// `(replica, site, configuration)` triple clones strings on every
/// candidate. Hot paths that score thousands of candidates per decision
/// — a scheduler placing a job, a mid-run re-selection sweep — build a
/// `DeploymentRef` on the stack instead and allocate nothing.
///
/// The WAN path collapses to the one number prediction consumes, the
/// per-stream bandwidth, so callers substituting a live bandwidth
/// estimate for the nominal value just pass a different `stream_bw`.
#[derive(Debug, Clone, Copy)]
pub struct DeploymentRef<'a> {
    /// The repository hosting the chosen dataset replica.
    pub repository: &'a RepositorySite,
    /// The compute site.
    pub compute: &'a ComputeSite,
    /// Per-stream WAN bandwidth on the repository→site path, bytes/sec
    /// (the model's `b̂`; nominal or a live estimate).
    pub stream_bw: f64,
    /// Node counts on each side.
    pub config: Configuration,
    /// Optional non-local caching site.
    pub cache: Option<&'a CacheSite>,
}

impl DeploymentRef<'_> {
    /// Short label for tables and errors, matching
    /// [`Deployment::label`]: `site@replica n-c`.
    pub fn label(&self) -> String {
        format!("{}@{} {}", self.compute.name, self.repository.name, self.config.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_matches_figures() {
        let grid = Configuration::paper_grid();
        let labels: Vec<String> = grid.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec![
                "1-1", "1-2", "1-4", "1-8", "1-16", "2-2", "2-4", "2-8", "2-16", "4-4", "4-8",
                "4-16", "8-8", "8-16"
            ]
        );
    }

    #[test]
    #[should_panic(expected = "compute nodes >= data nodes")]
    fn fewer_compute_than_data_nodes_rejected() {
        Configuration::new(4, 2);
    }

    #[test]
    fn enumerate_prunes_infeasible() {
        let repo_small = RepositorySite::pentium_repository("small", 2);
        let repo_big = RepositorySite::pentium_repository("big", 8);
        let site = ComputeSite::pentium_myrinet("cs", 4);
        let wan = Wan::per_stream(1e6);
        let configs = vec![
            Configuration::new(1, 1),
            Configuration::new(4, 4),
            Configuration::new(8, 8), // needs 8 compute nodes: never feasible
        ];
        let deployments =
            Deployment::enumerate(&[(repo_small, wan.clone()), (repo_big, wan)], &[site], &configs);
        let labels: Vec<String> = deployments.iter().map(|d| d.label()).collect();
        assert_eq!(labels, vec!["cs@small 1-1", "cs@big 1-1", "cs@big 4-4"]);
    }

    #[test]
    #[should_panic(expected = "has only")]
    fn deployment_checks_site_limits() {
        Deployment::new(
            RepositorySite::pentium_repository("r", 1),
            ComputeSite::pentium_myrinet("c", 16),
            Wan::per_stream(1e6),
            Configuration::new(2, 4),
        );
    }
}
