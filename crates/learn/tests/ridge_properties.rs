//! Property tests for the regression core: coefficient recovery from
//! noise-free samples, determinism under sample reordering, and typed
//! rejection of degenerate sets — never a panic, never a non-finite
//! coefficient.

use fg_learn::{fit_ridge, FitError};
use proptest::prelude::*;

/// Deterministic pseudo-random feature value derived from integer
/// selectors (the vendored proptest generates flat tuples; real-valued
/// design matrices are expanded from them reproducibly).
fn feat(seed: u64, row: usize, col: usize) -> f64 {
    let mut h = seed
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add((row as u64) << 32)
        .wrapping_add(col as u64);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51afd7ed558ccd);
    h ^= h >> 33;
    // In [0.1, 10.1): well away from zero so columns are informative.
    0.1 + (h % 10_000) as f64 / 1_000.0
}

fn design(seed: u64, rows: usize, dims: usize) -> Vec<Vec<f64>> {
    (0..rows)
        .map(|r| {
            let mut row = vec![1.0];
            row.extend((1..dims).map(|c| feat(seed, r, c)));
            row
        })
        .collect()
}

fn targets(xs: &[Vec<f64>], w: &[f64]) -> Vec<f64> {
    xs.iter().map(|row| row.iter().zip(w).map(|(x, c)| x * c).sum()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Noise-free targets generated from known coefficients are
    /// recovered to high precision with negligible damping.
    #[test]
    fn recovers_planted_coefficients(
        seed in 0u64..1_000_000,
        rows in 6usize..40,
        dims in 2usize..6,
        w_sel in proptest::collection::vec(-500i64..500, 6..7),
    ) {
        let rows = rows.max(dims);
        let w_true: Vec<f64> = (0..dims).map(|i| w_sel[i] as f64 / 100.0).collect();
        let xs = design(seed, rows, dims);
        let ys = targets(&xs, &w_true);
        let w = fit_ridge(&xs, &ys, 1e-10).unwrap();
        for (got, want) in w.iter().zip(&w_true) {
            prop_assert!(
                (got - want).abs() < 1e-4 * (1.0 + want.abs()),
                "recovered {got} for planted {want}"
            );
        }
    }

    /// The fit of a fixed sample matrix is bitwise deterministic, and
    /// feeding the *rows* in any rotation produces the same
    /// coefficients once the caller canonicalizes order — here we pin
    /// the stronger property the predictor relies on: the fit of the
    /// canonically sorted matrix is invariant under input rotation.
    #[test]
    fn canonical_fit_is_invariant_under_reordering(
        seed in 0u64..1_000_000,
        rows in 6usize..30,
        dims in 2usize..5,
        rot in 0usize..30,
    ) {
        let rows = rows.max(dims);
        let xs = design(seed, rows, dims);
        let ys = targets(&xs, &vec![1.5; dims]);
        let mut paired: Vec<(Vec<f64>, f64)> =
            xs.iter().cloned().zip(ys.iter().copied()).collect();
        let len = paired.len();
        paired.rotate_left(rot % len);
        // Canonicalize exactly the way LearnedPredictor does: total
        // order over the full sample tuple via bit patterns.
        let key = |p: &(Vec<f64>, f64)| {
            let mut k: Vec<u64> = p.0.iter().map(|v| v.to_bits()).collect();
            k.push(p.1.to_bits());
            k
        };
        paired.sort_by_key(key);
        let xs2: Vec<Vec<f64>> = paired.iter().map(|p| p.0.clone()).collect();
        let ys2: Vec<f64> = paired.iter().map(|p| p.1).collect();
        let w_rot = fit_ridge(&xs2, &ys2, 1e-8).unwrap();

        let mut base: Vec<(Vec<f64>, f64)> =
            xs.iter().cloned().zip(ys.iter().copied()).collect();
        base.sort_by_key(key);
        let xs1: Vec<Vec<f64>> = base.iter().map(|p| p.0.clone()).collect();
        let ys1: Vec<f64> = base.iter().map(|p| p.1).collect();
        let w = fit_ridge(&xs1, &ys1, 1e-8).unwrap();

        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&w), bits(&w_rot));
    }

    /// Poisoning any single cell with NaN or infinity yields the typed
    /// `NonFinite` rejection — no panic, no silent garbage.
    #[test]
    fn poisoned_cells_are_typed_rejections(
        seed in 0u64..1_000_000,
        rows in 4usize..20,
        dims in 2usize..5,
        poison_row in 0usize..20,
        poison_col in 0usize..5,
        which in 0usize..3,
    ) {
        let rows = rows.max(dims);
        let mut xs = design(seed, rows, dims);
        let mut ys = targets(&xs, &vec![2.0; dims]);
        let r = poison_row % rows;
        let poison = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][which];
        if which % 2 == 0 {
            let c = poison_col % dims;
            xs[r][c] = poison;
        } else {
            ys[r] = poison;
        }
        prop_assert_eq!(fit_ridge(&xs, &ys, 1e-6), Err(FitError::NonFinite));
    }

    /// Rank-deficient matrices without damping are `IllConditioned`;
    /// with damping the same system fits and stays finite. Either way,
    /// no panic and no non-finite output.
    #[test]
    fn rank_deficiency_is_rejected_or_damped_finite(
        seed in 0u64..1_000_000,
        rows in 4usize..20,
        dims in 3usize..6,
    ) {
        let rows = rows.max(dims);
        let mut xs = design(seed, rows, dims);
        // Duplicate one column: exact collinearity.
        for row in &mut xs {
            row[dims - 1] = row[dims - 2];
        }
        let ys = targets(&xs, &vec![1.0; dims]);
        prop_assert_eq!(fit_ridge(&xs, &ys, 0.0), Err(FitError::IllConditioned));
        let w = fit_ridge(&xs, &ys, 1e-6).unwrap();
        prop_assert!(w.iter().all(|v| v.is_finite()));
    }

    /// Sub-determined and empty sample sets are typed rejections.
    #[test]
    fn too_small_sets_are_typed_rejections(
        seed in 0u64..1_000_000,
        dims in 2usize..6,
    ) {
        let xs = design(seed, dims - 1, dims);
        let ys = targets(&xs, &vec![1.0; dims]);
        prop_assert_eq!(
            fit_ridge(&xs, &ys, 1e-6),
            Err(FitError::NotEnoughSamples { got: dims - 1, need: dims })
        );
        prop_assert_eq!(fit_ridge(&[], &[], 1e-6), Err(FitError::Empty));
    }
}
