//! Deterministic ridge regression by normal equations.
//!
//! The learned predictors fit tiny linear models — a handful of
//! physically-motivated features per execution-time component — from at
//! most a few hundred retained samples, so the textbook route is the
//! right one: form `A = XᵀX + λI` and `b = Xᵀy`, then solve `Aw = b`
//! by Gaussian elimination with partial pivoting. Everything is plain
//! `f64` arithmetic in a fixed order, so a fit is a pure function of
//! its inputs: the same sample matrix produces bit-identical
//! coefficients on every run.
//!
//! Degenerate inputs are *typed rejections*, never panics and never
//! non-finite coefficients: an empty sample set, a sample containing a
//! NaN or infinity, too few rows to determine the coefficients, and a
//! numerically singular normal matrix each map to their own
//! [`FitError`] variant so callers can keep serving the analytical
//! model instead of poisoning predictions.

use std::fmt;

/// Why a fit was refused. Every variant is a property of the sample
/// set, not a transient condition: retrying the same fit yields the
/// same error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitError {
    /// No samples at all.
    Empty,
    /// Fewer rows than coefficients: the normal equations would be
    /// determined only by the ridge prior, not the data.
    NotEnoughSamples {
        /// Rows provided.
        got: usize,
        /// Rows required (the feature dimension).
        need: usize,
    },
    /// A feature or target value is NaN or infinite.
    NonFinite,
    /// The regularized normal matrix is numerically singular (e.g.
    /// duplicated feature columns with `lambda == 0`), or elimination
    /// produced non-finite coefficients.
    IllConditioned,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::Empty => write!(f, "no samples to fit"),
            FitError::NotEnoughSamples { got, need } => {
                write!(f, "{got} samples cannot determine {need} coefficients")
            }
            FitError::NonFinite => write!(f, "sample set contains a non-finite value"),
            FitError::IllConditioned => {
                write!(f, "normal matrix is numerically singular")
            }
        }
    }
}

impl std::error::Error for FitError {}

/// Least-squares fit of `y ≈ X·w` with Tikhonov damping `lambda` on
/// every coefficient. Returns the coefficient vector `w` (same length
/// as each feature row), or a typed [`FitError`].
///
/// All rows must share one length; `lambda` must be finite and
/// non-negative. The returned coefficients are always finite.
pub fn fit_ridge(xs: &[Vec<f64>], ys: &[f64], lambda: f64) -> Result<Vec<f64>, FitError> {
    if xs.is_empty() || ys.is_empty() {
        return Err(FitError::Empty);
    }
    assert_eq!(xs.len(), ys.len(), "one target per feature row");
    let dims = xs[0].len();
    assert!(dims > 0, "feature rows must be non-empty");
    assert!(lambda.is_finite() && lambda >= 0.0, "ridge damping must be finite and non-negative");
    if xs.len() < dims {
        return Err(FitError::NotEnoughSamples { got: xs.len(), need: dims });
    }
    for (row, &y) in xs.iter().zip(ys) {
        assert_eq!(row.len(), dims, "ragged feature matrix");
        if !y.is_finite() || row.iter().any(|v| !v.is_finite()) {
            return Err(FitError::NonFinite);
        }
    }

    // Normal equations: A = XᵀX + λI (dims × dims), b = Xᵀy.
    let mut a = vec![vec![0.0f64; dims]; dims];
    let mut b = vec![0.0f64; dims];
    for (row, &y) in xs.iter().zip(ys) {
        for i in 0..dims {
            for j in 0..dims {
                a[i][j] += row[i] * row[j];
            }
            b[i] += row[i] * y;
        }
    }
    for (i, row) in a.iter_mut().enumerate() {
        row[i] += lambda;
    }

    solve(a, b).ok_or(FitError::IllConditioned)
}

/// Gaussian elimination with partial pivoting. `None` when a pivot is
/// negligible relative to the matrix scale or the solution is not
/// finite.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    let scale = a.iter().flat_map(|row| row.iter()).fold(1.0f64, |acc, &v| acc.max(v.abs()));
    for col in 0..n {
        // Largest remaining pivot in this column; ties keep the
        // lowest row index, so the elimination order is deterministic.
        let mut pivot = col;
        for row in col + 1..n {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() <= 1e-12 * scale {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            a[row][col] = 0.0;
            // Split the two rows so the pivot row can be borrowed
            // immutably while the target row is eliminated in place.
            let (pivot_rows, target_rows) = a.split_at_mut(row);
            let (pivot_row, target_row) = (&pivot_rows[col], &mut target_rows[0]);
            for (t, p) in target_row[col + 1..n].iter_mut().zip(&pivot_row[col + 1..n]) {
                *t -= f * p;
            }
            b[row] -= f * b[col];
        }
    }
    let mut w = vec![0.0f64; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in col + 1..n {
            acc -= a[col][k] * w[k];
        }
        w[col] = acc / a[col][col];
    }
    if w.iter().all(|v| v.is_finite()) {
        Some(w)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design(rows: &[(f64, f64)]) -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 3 + 2·u − 0.5·v, exactly.
        let xs: Vec<Vec<f64>> = rows.iter().map(|&(u, v)| vec![1.0, u, v]).collect();
        let ys: Vec<f64> = rows.iter().map(|&(u, v)| 3.0 + 2.0 * u - 0.5 * v).collect();
        (xs, ys)
    }

    #[test]
    fn recovers_exact_coefficients_from_noise_free_samples() {
        let (xs, ys) = design(&[(0.0, 1.0), (1.0, 0.0), (2.0, 3.0), (5.0, 2.0), (7.0, 9.0)]);
        let w = fit_ridge(&xs, &ys, 0.0).unwrap();
        assert!((w[0] - 3.0).abs() < 1e-9, "intercept {w:?}");
        assert!((w[1] - 2.0).abs() < 1e-9);
        assert!((w[2] + 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_set_is_a_typed_rejection() {
        assert_eq!(fit_ridge(&[], &[], 1e-6), Err(FitError::Empty));
    }

    #[test]
    fn non_finite_samples_are_rejected_not_propagated() {
        let (mut xs, ys) = design(&[(0.0, 1.0), (1.0, 0.0), (2.0, 3.0)]);
        xs[1][2] = f64::NAN;
        assert_eq!(fit_ridge(&xs, &ys, 1e-6), Err(FitError::NonFinite));
        let (xs, mut ys) = design(&[(0.0, 1.0), (1.0, 0.0), (2.0, 3.0)]);
        ys[0] = f64::INFINITY;
        assert_eq!(fit_ridge(&xs, &ys, 1e-6), Err(FitError::NonFinite));
    }

    #[test]
    fn underdetermined_set_is_rejected() {
        let (xs, ys) = design(&[(0.0, 1.0), (1.0, 0.0)]);
        assert_eq!(fit_ridge(&xs, &ys, 1e-6), Err(FitError::NotEnoughSamples { got: 2, need: 3 }));
    }

    #[test]
    fn duplicated_columns_without_damping_are_ill_conditioned() {
        let xs: Vec<Vec<f64>> = (0..6).map(|i| vec![1.0, i as f64, i as f64]).collect();
        let ys: Vec<f64> = (0..6).map(|i| 1.0 + 3.0 * i as f64).collect();
        assert_eq!(fit_ridge(&xs, &ys, 0.0), Err(FitError::IllConditioned));
        // A whisper of ridge makes the same system solvable — and the
        // collinear pair splits the slope deterministically.
        let w = fit_ridge(&xs, &ys, 1e-9).unwrap();
        assert!(w.iter().all(|v| v.is_finite()));
        assert!((w[1] + w[2] - 3.0).abs() < 1e-3, "{w:?}");
    }

    #[test]
    fn fit_is_bitwise_deterministic() {
        let (xs, ys) = design(&[(0.2, 1.7), (1.1, 0.3), (2.9, 3.4), (5.5, 2.2), (7.1, 9.9)]);
        let a = fit_ridge(&xs, &ys, 1e-6).unwrap();
        let b = fit_ridge(&xs, &ys, 1e-6).unwrap();
        let bits = |w: &[f64]| w.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
    }
}
