//! The two trained predictors: per-key ridge regression and an
//! EWMA-ratio-corrected hybrid.
//!
//! Both implement [`Predictor`] with interior mutability so one
//! instance can sit behind an `Arc` shared between a scheduler core and
//! its snapshots, both fall back to the analytical model until they
//! have seen enough evidence, and both obey the determinism contract:
//! state changes only in [`Predictor::observe`], every change that can
//! alter a prediction bumps the epoch, and a fixed sample multiset
//! produces bit-identical models regardless of arrival order (the
//! learned predictor refits from a canonically sorted copy of its
//! retained buffer).
//!
//! # Trust region
//!
//! A regression fit from a handful of samples can extrapolate wildly on
//! targets far from its training set. [`LearnedPredictor`] therefore
//! clamps each predicted component into
//! `[analytical / trust, analytical × trust]`. With the default
//! `trust = 2`, the guard-rail is structural: the learned model can
//! never admit a job the analytical model would reject by more than 2×,
//! and never rank a candidate more than 2× cheaper than physics says.

use crate::ridge::fit_ridge;
use fg_cluster::DeploymentRef;
use fg_predict::{
    try_predict_deployment, AppClasses, Observation, Prediction, Predictor, Profile,
    ScalingFactors, SelectionError,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Model-dump format version; bumped on any incompatible change to the
/// JSONL layout or the feature map.
pub const MODEL_VERSION: u32 = 1;

/// Component count (`[disk, network, compute]`).
const COMPONENTS: usize = 3;

/// Feature dimension of [`features`].
const DIMS: usize = 5;

/// The shared feature map: physically-motivated terms spanning all
/// three execution-time components.
///
/// With `S` the dataset in MB, `b` the per-stream WAN bandwidth in
/// MB/s, `n` data nodes and `c` compute nodes:
/// `[1, S/n, S/(n·b), S/c, c]` — retrieval scales with bytes per data
/// node, streaming with bytes per node-stream over bandwidth, compute
/// with bytes per compute node plus a combine term linear in `c`.
fn features(
    data_nodes: usize,
    compute_nodes: usize,
    wan_bw: f64,
    dataset_bytes: u64,
) -> [f64; DIMS] {
    let s = dataset_bytes as f64 / 1e6;
    let b = wan_bw / 1e6;
    let n = data_nodes as f64;
    let c = compute_nodes as f64;
    [1.0, s / n, s / (n * b), s / c, c]
}

fn dot(w: &[f64], phi: &[f64; DIMS]) -> f64 {
    w.iter().zip(phi).map(|(a, b)| a * b).sum()
}

/// Tuning knobs for [`LearnedPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LearnConfig {
    /// Observations a `(app, repository)` key must accumulate before
    /// its first fit; until then the analytical model answers.
    pub min_samples: usize,
    /// Retained samples per key; older ones fall off a ring.
    pub capacity: usize,
    /// Ridge damping on the normal equations.
    pub lambda: f64,
    /// Trust-region half-width: each predicted component is clamped to
    /// `[analytical / trust, analytical × trust]`. Must be `>= 1`.
    pub trust: f64,
}

impl Default for LearnConfig {
    fn default() -> LearnConfig {
        LearnConfig { min_samples: 8, capacity: 512, lambda: 1e-6, trust: 2.0 }
    }
}

/// One retained training sample: the placement tuple and the observed
/// component times. The prediction that accompanied it is not stored —
/// fits regress *observed* times on the tuple alone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SampleRow {
    data_nodes: usize,
    compute_nodes: usize,
    wan_bw: f64,
    dataset_bytes: u64,
    observed: [f64; COMPONENTS],
}

impl SampleRow {
    /// Total order used to canonicalize the buffer before every refit,
    /// making the fit a function of the retained *multiset*. Floats
    /// compare by sign-aware bit patterns (all values here are
    /// non-negative in practice; ties are broken by later fields).
    fn sort_key(&self) -> (u64, usize, usize, u64, [u64; COMPONENTS]) {
        (
            self.dataset_bytes,
            self.data_nodes,
            self.compute_nodes,
            self.wan_bw.to_bits(),
            [self.observed[0].to_bits(), self.observed[1].to_bits(), self.observed[2].to_bits()],
        )
    }
}

/// Per-`(app, repository)` model state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct KeyState {
    app: String,
    repo: String,
    /// Retained samples in ingestion order (the ring's eviction order).
    samples: Vec<SampleRow>,
    /// Fitted coefficients per component, once `min_samples` cleared
    /// and the fit succeeded. `None` keys answer analytically.
    coefs: Option<[Vec<f64>; COMPONENTS]>,
}

/// Online per-`(app, repository)` ridge regression behind the
/// [`Predictor`] seam.
///
/// Every clean completion appends a sample to its key's bounded buffer;
/// once `min_samples` have accumulated the key refits from a
/// canonically sorted copy of the buffer, so the model depends only on
/// *which* samples are retained, never on their arrival order. Keys
/// without a model — and any fit the ridge core rejects — fall back to
/// the analytical prediction, and fitted predictions are clamped into
/// the trust region around it.
#[derive(Debug)]
pub struct LearnedPredictor {
    cfg: LearnConfig,
    state: Mutex<Vec<KeyState>>,
    epoch: AtomicU64,
}

impl Default for LearnedPredictor {
    fn default() -> LearnedPredictor {
        LearnedPredictor::new(LearnConfig::default())
    }
}

impl LearnedPredictor {
    /// An empty predictor: answers analytically until trained.
    pub fn new(cfg: LearnConfig) -> LearnedPredictor {
        assert!(cfg.min_samples >= DIMS, "cannot fit {DIMS} coefficients from fewer samples");
        assert!(cfg.capacity >= cfg.min_samples);
        assert!(cfg.lambda.is_finite() && cfg.lambda >= 0.0);
        assert!(cfg.trust.is_finite() && cfg.trust >= 1.0);
        LearnedPredictor { cfg, state: Mutex::new(Vec::new()), epoch: AtomicU64::new(0) }
    }

    /// The configuration this predictor was built with.
    pub fn config(&self) -> LearnConfig {
        self.cfg
    }

    /// Keys that currently hold a fitted model.
    pub fn trained_keys(&self) -> usize {
        self.state.lock().unwrap().iter().filter(|k| k.coefs.is_some()).count()
    }

    /// Serialize the model as versioned JSONL: a header line carrying
    /// the config, then one line per `(app, repository)` key with its
    /// retained samples (ingestion order) and fitted coefficients.
    /// The epoch is deliberately excluded — it is an instance-local
    /// cache-invalidation counter, not part of the model.
    pub fn dump_jsonl(&self) -> String {
        #[derive(Serialize)]
        struct Header {
            kind: &'static str,
            version: u32,
            config: LearnConfig,
        }
        let mut out = String::new();
        let header = Header { kind: "fg-learn-model", version: MODEL_VERSION, config: self.cfg };
        out.push_str(&serde_json::to_string(&header).expect("header serializes"));
        out.push('\n');
        for key in self.state.lock().unwrap().iter() {
            out.push_str(&serde_json::to_string(key).expect("key serializes"));
            out.push('\n');
        }
        out
    }

    /// Rebuild a predictor from a [`Self::dump_jsonl`] corpus. The dump
    /// is authoritative: samples and coefficients are installed
    /// verbatim, so `dump → replay → dump` is a byte fixpoint. The
    /// epoch restarts at the number of trained keys (any positive value
    /// distinguishes a trained replay from a fresh instance).
    pub fn replay_jsonl(text: &str) -> Result<LearnedPredictor, String> {
        #[derive(Deserialize)]
        struct Header {
            kind: String,
            version: u32,
            config: LearnConfig,
        }
        let mut lines = text.lines().enumerate();
        let (_, first) = lines.next().ok_or("empty model dump")?;
        let header: Header =
            serde_json::from_str(first).map_err(|e| format!("line 1: bad header: {e}"))?;
        if header.kind != "fg-learn-model" {
            return Err(format!("line 1: not a learned-model dump (kind {:?})", header.kind));
        }
        if header.version != MODEL_VERSION {
            return Err(format!(
                "line 1: model version {} (this build reads {MODEL_VERSION})",
                header.version
            ));
        }
        let pred = LearnedPredictor::new(header.config);
        let mut keys: Vec<KeyState> = Vec::new();
        for (i, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let key: KeyState =
                serde_json::from_str(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            if key.samples.len() > header.config.capacity {
                return Err(format!(
                    "line {}: {} samples exceed the dump's own capacity {}",
                    i + 1,
                    key.samples.len(),
                    header.config.capacity
                ));
            }
            if let Some(coefs) = &key.coefs {
                if coefs.iter().any(|w| w.len() != DIMS) {
                    return Err(format!("line {}: coefficient vector is not {DIMS}-dim", i + 1));
                }
            }
            keys.push(key);
        }
        let trained = keys.iter().filter(|k| k.coefs.is_some()).count() as u64;
        *pred.state.lock().unwrap() = keys;
        pred.epoch.store(trained, Ordering::SeqCst);
        Ok(pred)
    }
}

impl Predictor for LearnedPredictor {
    fn name(&self) -> &'static str {
        "learned"
    }

    fn predict_deployment(
        &self,
        profile: &Profile,
        classes: AppClasses,
        d: DeploymentRef<'_>,
        dataset_bytes: u64,
        factors: &HashMap<String, ScalingFactors>,
    ) -> Result<Prediction, SelectionError> {
        // The analytical model both validates the target (its typed
        // rejections propagate unchanged) and anchors the trust region.
        let a = try_predict_deployment(profile, classes, d, dataset_bytes, factors)?;
        let state = self.state.lock().unwrap();
        let Some(coefs) = state
            .iter()
            .find(|k| k.app == profile.app && k.repo == d.repository.name)
            .and_then(|k| k.coefs.as_ref())
        else {
            return Ok(a);
        };
        let phi = features(d.config.data_nodes, d.config.compute_nodes, d.stream_bw, dataset_bytes);
        let clamp = |w: &[f64], anchor: f64| -> f64 {
            let raw = dot(w, &phi);
            if raw.is_finite() {
                raw.clamp(anchor / self.cfg.trust, anchor * self.cfg.trust)
            } else {
                anchor
            }
        };
        Ok(Prediction {
            t_disk: clamp(&coefs[0], a.t_disk),
            t_network: clamp(&coefs[1], a.t_network),
            t_compute: clamp(&coefs[2], a.t_compute),
        })
    }

    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    fn wants_observations(&self) -> bool {
        true
    }

    fn observe(&self, obs: &Observation) {
        if obs.observed.iter().any(|v| !v.is_finite()) || !obs.wan_bw.is_finite() {
            return;
        }
        let mut state = self.state.lock().unwrap();
        let ki = match state.iter().position(|k| k.app == obs.app && k.repo == obs.repo) {
            Some(i) => i,
            None => {
                state.push(KeyState {
                    app: obs.app.clone(),
                    repo: obs.repo.clone(),
                    samples: Vec::new(),
                    coefs: None,
                });
                state.len() - 1
            }
        };
        let key = &mut state[ki];
        key.samples.push(SampleRow {
            data_nodes: obs.data_nodes,
            compute_nodes: obs.compute_nodes,
            wan_bw: obs.wan_bw,
            dataset_bytes: obs.dataset_bytes,
            observed: obs.observed,
        });
        while key.samples.len() > self.cfg.capacity {
            key.samples.remove(0);
        }
        if key.samples.len() < self.cfg.min_samples {
            return;
        }
        // Refit from a canonically sorted copy: the model is a function
        // of the retained multiset, independent of arrival order.
        let mut canon = key.samples.clone();
        canon.sort_by_key(|x| x.sort_key());
        let xs: Vec<Vec<f64>> = canon
            .iter()
            .map(|s| features(s.data_nodes, s.compute_nodes, s.wan_bw, s.dataset_bytes).to_vec())
            .collect();
        let mut fitted: Vec<Vec<f64>> = Vec::with_capacity(COMPONENTS);
        for comp in 0..COMPONENTS {
            let ys: Vec<f64> = canon.iter().map(|s| s.observed[comp]).collect();
            match fit_ridge(&xs, &ys, self.cfg.lambda) {
                Ok(w) => fitted.push(w),
                // A rejected fit keeps the previous model (or the
                // analytical fallback): predictions are unchanged, so
                // the epoch stays put.
                Err(_) => return,
            }
        }
        let coefs: [Vec<f64>; COMPONENTS] =
            fitted.try_into().expect("one coefficient vector per component");
        if key.coefs.as_ref() != Some(&coefs) {
            key.coefs = Some(coefs);
            self.epoch.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// Tuning knobs for [`HybridPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HybridConfig {
    /// EWMA smoothing weight on the newest observation, in `(0, 1]`.
    pub alpha: f64,
    /// Lower clamp on each correction factor.
    pub min_ratio: f64,
    /// Upper clamp on each correction factor.
    pub max_ratio: f64,
}

impl Default for HybridConfig {
    fn default() -> HybridConfig {
        HybridConfig { alpha: 0.3, min_ratio: 0.25, max_ratio: 4.0 }
    }
}

/// Per-`(app, repository)` multiplicative correction state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct HybridKey {
    app: String,
    repo: String,
    /// Correction factor per component; predictions are
    /// `analytical × factor`.
    factors: [f64; COMPONENTS],
    /// Observations folded in (diagnostics only).
    samples: u64,
}

/// The analytical model with an EWMA-tracked multiplicative residual
/// correction per `(app, repository, component)`.
///
/// Each prediction is `analytical × f`. Each observation updates
/// `f ← clamp(f·((1−α) + α·observed/predicted))`; since the prediction
/// it is compared against was itself `analytical × f`, the update
/// tracks an EWMA of the `observed / analytical` ratio without ever
/// re-deriving the analytical value — exactly the estimator that wins
/// when the model's *shape* is right but a path parameter (a degraded
/// WAN link, a slow disk array) has drifted by a stable factor.
#[derive(Debug)]
pub struct HybridPredictor {
    cfg: HybridConfig,
    state: Mutex<Vec<HybridKey>>,
    epoch: AtomicU64,
}

impl Default for HybridPredictor {
    fn default() -> HybridPredictor {
        HybridPredictor::new(HybridConfig::default())
    }
}

impl HybridPredictor {
    /// A fresh corrector: every factor starts at 1, so an untrained
    /// instance is bit-identical to the analytical model.
    pub fn new(cfg: HybridConfig) -> HybridPredictor {
        assert!(cfg.alpha > 0.0 && cfg.alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(cfg.min_ratio > 0.0 && cfg.min_ratio <= 1.0);
        assert!(cfg.max_ratio >= 1.0 && cfg.max_ratio.is_finite());
        HybridPredictor { cfg, state: Mutex::new(Vec::new()), epoch: AtomicU64::new(0) }
    }

    /// The configuration this predictor was built with.
    pub fn config(&self) -> HybridConfig {
        self.cfg
    }

    /// Serialize as versioned JSONL: a header line with the config,
    /// one line per corrected `(app, repository)` key.
    pub fn dump_jsonl(&self) -> String {
        #[derive(Serialize)]
        struct Header {
            kind: &'static str,
            version: u32,
            config: HybridConfig,
        }
        let mut out = String::new();
        let header = Header { kind: "fg-hybrid-model", version: MODEL_VERSION, config: self.cfg };
        out.push_str(&serde_json::to_string(&header).expect("header serializes"));
        out.push('\n');
        for key in self.state.lock().unwrap().iter() {
            out.push_str(&serde_json::to_string(key).expect("key serializes"));
            out.push('\n');
        }
        out
    }

    /// Rebuild from a [`Self::dump_jsonl`] corpus; `dump → replay →
    /// dump` is a byte fixpoint.
    pub fn replay_jsonl(text: &str) -> Result<HybridPredictor, String> {
        #[derive(Deserialize)]
        struct Header {
            kind: String,
            version: u32,
            config: HybridConfig,
        }
        let mut lines = text.lines().enumerate();
        let (_, first) = lines.next().ok_or("empty model dump")?;
        let header: Header =
            serde_json::from_str(first).map_err(|e| format!("line 1: bad header: {e}"))?;
        if header.kind != "fg-hybrid-model" {
            return Err(format!("line 1: not a hybrid-model dump (kind {:?})", header.kind));
        }
        if header.version != MODEL_VERSION {
            return Err(format!(
                "line 1: model version {} (this build reads {MODEL_VERSION})",
                header.version
            ));
        }
        let pred = HybridPredictor::new(header.config);
        let mut keys: Vec<HybridKey> = Vec::new();
        for (i, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let key: HybridKey =
                serde_json::from_str(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            if key.factors.iter().any(|f| !f.is_finite()) {
                return Err(format!("line {}: non-finite correction factor", i + 1));
            }
            keys.push(key);
        }
        let trained = keys.len() as u64;
        *pred.state.lock().unwrap() = keys;
        pred.epoch.store(trained, Ordering::SeqCst);
        Ok(pred)
    }
}

impl Predictor for HybridPredictor {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn predict_deployment(
        &self,
        profile: &Profile,
        classes: AppClasses,
        d: DeploymentRef<'_>,
        dataset_bytes: u64,
        factors: &HashMap<String, ScalingFactors>,
    ) -> Result<Prediction, SelectionError> {
        let a = try_predict_deployment(profile, classes, d, dataset_bytes, factors)?;
        let state = self.state.lock().unwrap();
        let Some(key) = state.iter().find(|k| k.app == profile.app && k.repo == d.repository.name)
        else {
            return Ok(a);
        };
        Ok(Prediction {
            t_disk: a.t_disk * key.factors[0],
            t_network: a.t_network * key.factors[1],
            t_compute: a.t_compute * key.factors[2],
        })
    }

    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    fn wants_observations(&self) -> bool {
        true
    }

    fn observe(&self, obs: &Observation) {
        let mut state = self.state.lock().unwrap();
        let ki = match state.iter().position(|k| k.app == obs.app && k.repo == obs.repo) {
            Some(i) => i,
            None => {
                state.push(HybridKey {
                    app: obs.app.clone(),
                    repo: obs.repo.clone(),
                    factors: [1.0; COMPONENTS],
                    samples: 0,
                });
                state.len() - 1
            }
        };
        let key = &mut state[ki];
        let mut changed = false;
        for comp in 0..COMPONENTS {
            let predicted = obs.predicted[comp];
            let observed = obs.observed[comp];
            if !(predicted.is_finite()
                && predicted > 0.0
                && observed.is_finite()
                && observed >= 0.0)
            {
                continue;
            }
            let f = key.factors[comp];
            let updated = (f * ((1.0 - self.cfg.alpha) + self.cfg.alpha * observed / predicted))
                .clamp(self.cfg.min_ratio, self.cfg.max_ratio);
            if updated.to_bits() != f.to_bits() {
                key.factors[comp] = updated;
                changed = true;
            }
        }
        key.samples += 1;
        if changed {
            self.epoch.fetch_add(1, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};

    fn profile() -> Profile {
        Profile {
            app: "kmeans".into(),
            data_nodes: 1,
            compute_nodes: 1,
            wan_bw: 1e6,
            dataset_bytes: 1_000_000,
            t_disk: 40.0,
            t_network: 20.0,
            t_compute: 100.0,
            t_ro: 0.0,
            t_g: 0.5,
            max_obj_bytes: 512,
            passes: 1,
            repo_machine: "pentium-700".into(),
            compute_machine: "pentium-700".into(),
        }
    }

    fn deployment(n: usize, c: usize, bw: f64) -> Deployment {
        Deployment::new(
            RepositorySite::pentium_repository("osu", 8),
            ComputeSite::pentium_myrinet("cs", 16),
            Wan::per_stream(bw),
            Configuration::new(n, c),
        )
    }

    fn analytical(n: usize, c: usize, bw: f64, bytes: u64) -> Prediction {
        try_predict_deployment(
            &profile(),
            AppClasses::CONSTANT_LINEAR_CONSTANT,
            deployment(n, c, bw).as_ref(),
            bytes,
            &HashMap::new(),
        )
        .unwrap()
    }

    /// An observation whose ground truth is the analytical model times
    /// a fixed per-component stretch — the drift regime both learners
    /// are built for.
    fn stretched_obs(n: usize, c: usize, bw: f64, bytes: u64, stretch: [f64; 3]) -> Observation {
        let a = analytical(n, c, bw, bytes);
        Observation {
            app: "kmeans".into(),
            repo: "osu".into(),
            data_nodes: n,
            compute_nodes: c,
            wan_bw: bw,
            dataset_bytes: bytes,
            predicted: [a.t_disk, a.t_network, a.t_compute],
            observed: [a.t_disk * stretch[0], a.t_network * stretch[1], a.t_compute * stretch[2]],
        }
    }

    fn training_grid() -> Vec<(usize, usize, f64, u64)> {
        let mut grid = Vec::new();
        for &(n, c) in &[(1usize, 1usize), (1, 2), (2, 4), (4, 8), (8, 16), (2, 2)] {
            for &bw in &[4e5, 1e6, 2e6] {
                for &bytes in &[64u64 << 20, 200 << 20, 800 << 20] {
                    grid.push((n, c, bw, bytes));
                }
            }
        }
        grid
    }

    #[test]
    fn untrained_learned_predictor_is_bit_identical_to_analytical() {
        let pred = LearnedPredictor::default();
        let d = deployment(2, 4, 1e6);
        let got = pred
            .predict_deployment(
                &profile(),
                AppClasses::CONSTANT_LINEAR_CONSTANT,
                d.as_ref(),
                200 << 20,
                &HashMap::new(),
            )
            .unwrap();
        let want = analytical(2, 4, 1e6, 200 << 20);
        assert_eq!(got.t_disk.to_bits(), want.t_disk.to_bits());
        assert_eq!(got.t_network.to_bits(), want.t_network.to_bits());
        assert_eq!(got.t_compute.to_bits(), want.t_compute.to_bits());
        assert_eq!(pred.epoch(), 0);
    }

    #[test]
    fn learned_predictor_tracks_a_stretched_world_within_trust() {
        let pred = LearnedPredictor::default();
        let stretch = [1.8, 1.5, 1.2];
        for &(n, c, bw, bytes) in &training_grid() {
            pred.observe(&stretched_obs(n, c, bw, bytes, stretch));
        }
        assert!(pred.epoch() > 0, "training must bump the epoch");
        assert_eq!(pred.trained_keys(), 1);
        // Held-out target: inside the training envelope but not a
        // training point.
        let d = deployment(2, 8, 8e5);
        let bytes = 400 << 20;
        let got = pred
            .predict_deployment(
                &profile(),
                AppClasses::CONSTANT_LINEAR_CONSTANT,
                d.as_ref(),
                bytes,
                &HashMap::new(),
            )
            .unwrap();
        let a = analytical(2, 8, 8e5, bytes);
        let truth = [a.t_disk * stretch[0], a.t_network * stretch[1], a.t_compute * stretch[2]];
        for (i, (g, t)) in [got.t_disk, got.t_network, got.t_compute].iter().zip(&truth).enumerate()
        {
            let rel = (g - t).abs() / t;
            assert!(rel < 0.10, "component {i}: predicted {g}, truth {t} (rel {rel:.3})");
        }
    }

    #[test]
    fn trust_region_bounds_every_learned_component() {
        let cfg = LearnConfig { trust: 2.0, ..LearnConfig::default() };
        let pred = LearnedPredictor::new(cfg);
        // Train on an absurd 50× stretch: the fit will try to follow,
        // the clamp must hold the line at 2×.
        for &(n, c, bw, bytes) in &training_grid() {
            pred.observe(&stretched_obs(n, c, bw, bytes, [50.0, 50.0, 50.0]));
        }
        let d = deployment(4, 8, 1e6);
        let bytes = 320 << 20;
        let got = pred
            .predict_deployment(
                &profile(),
                AppClasses::CONSTANT_LINEAR_CONSTANT,
                d.as_ref(),
                bytes,
                &HashMap::new(),
            )
            .unwrap();
        let a = analytical(4, 8, 1e6, bytes);
        for (g, anchor) in [got.t_disk, got.t_network, got.t_compute].iter().zip([
            a.t_disk,
            a.t_network,
            a.t_compute,
        ]) {
            assert!(*g <= anchor * 2.0 + 1e-9, "clamp violated: {g} vs anchor {anchor}");
            assert!(*g >= anchor / 2.0 - 1e-9);
        }
    }

    #[test]
    fn learned_model_is_independent_of_arrival_order() {
        let grid = training_grid();
        let forward = LearnedPredictor::default();
        for &(n, c, bw, bytes) in &grid {
            forward.observe(&stretched_obs(n, c, bw, bytes, [1.4, 1.1, 0.9]));
        }
        let backward = LearnedPredictor::default();
        for &(n, c, bw, bytes) in grid.iter().rev() {
            backward.observe(&stretched_obs(n, c, bw, bytes, [1.4, 1.1, 0.9]));
        }
        // Same retained multiset ⇒ bitwise-identical predictions on
        // every probe (the dumps differ only in buffer ingestion
        // order, which is immaterial to the model).
        for &(n, c, bw, bytes) in &grid {
            let probe = |p: &LearnedPredictor| {
                p.predict_deployment(
                    &profile(),
                    AppClasses::CONSTANT_LINEAR_CONSTANT,
                    deployment(n, c, bw).as_ref(),
                    bytes,
                    &HashMap::new(),
                )
                .unwrap()
            };
            let f = probe(&forward);
            let b = probe(&backward);
            assert_eq!(f.t_disk.to_bits(), b.t_disk.to_bits());
            assert_eq!(f.t_network.to_bits(), b.t_network.to_bits());
            assert_eq!(f.t_compute.to_bits(), b.t_compute.to_bits());
        }
    }

    #[test]
    fn learned_dump_replay_dump_is_a_byte_fixpoint() {
        let pred = LearnedPredictor::default();
        for &(n, c, bw, bytes) in &training_grid() {
            pred.observe(&stretched_obs(n, c, bw, bytes, [1.3, 1.6, 1.1]));
        }
        let dump = pred.dump_jsonl();
        let replayed = LearnedPredictor::replay_jsonl(&dump).unwrap();
        assert_eq!(replayed.dump_jsonl(), dump);
        assert!(replayed.epoch() > 0);
        // And the replayed instance predicts bit-identically.
        let d = deployment(2, 4, 1e6);
        let p1 = pred
            .predict_deployment(
                &profile(),
                AppClasses::CONSTANT_LINEAR_CONSTANT,
                d.as_ref(),
                200 << 20,
                &HashMap::new(),
            )
            .unwrap();
        let p2 = replayed
            .predict_deployment(
                &profile(),
                AppClasses::CONSTANT_LINEAR_CONSTANT,
                d.as_ref(),
                200 << 20,
                &HashMap::new(),
            )
            .unwrap();
        assert_eq!(p1.total().to_bits(), p2.total().to_bits());
    }

    #[test]
    fn replay_rejects_foreign_and_future_dumps() {
        assert!(LearnedPredictor::replay_jsonl("").is_err());
        let hybrid_dump = HybridPredictor::default().dump_jsonl();
        assert!(LearnedPredictor::replay_jsonl(&hybrid_dump).is_err());
        let future = "{\"kind\":\"fg-learn-model\",\"version\":999,\"config\":{\"min_samples\":8,\"capacity\":512,\"lambda\":1e-6,\"trust\":2.0}}\n";
        assert!(LearnedPredictor::replay_jsonl(future).is_err());
    }

    #[test]
    fn hybrid_converges_to_a_constant_stretch() {
        let pred = HybridPredictor::default();
        let a = analytical(2, 4, 1e6, 200 << 20);
        // Feed the self-referential update: each observation's
        // `predicted` is what the hybrid itself would have said.
        for _ in 0..40 {
            let cur = pred
                .predict_deployment(
                    &profile(),
                    AppClasses::CONSTANT_LINEAR_CONSTANT,
                    deployment(2, 4, 1e6).as_ref(),
                    200 << 20,
                    &HashMap::new(),
                )
                .unwrap();
            pred.observe(&Observation {
                app: "kmeans".into(),
                repo: "osu".into(),
                data_nodes: 2,
                compute_nodes: 4,
                wan_bw: 1e6,
                dataset_bytes: 200 << 20,
                predicted: [cur.t_disk, cur.t_network, cur.t_compute],
                observed: [a.t_disk * 1.0, a.t_network * 3.0, a.t_compute * 1.0],
            });
        }
        let got = pred
            .predict_deployment(
                &profile(),
                AppClasses::CONSTANT_LINEAR_CONSTANT,
                deployment(2, 4, 1e6).as_ref(),
                200 << 20,
                &HashMap::new(),
            )
            .unwrap();
        assert!((got.t_network / a.t_network - 3.0).abs() < 0.05, "{}", got.t_network);
        assert!((got.t_disk / a.t_disk - 1.0).abs() < 1e-9);
        assert!(pred.epoch() > 0);
    }

    #[test]
    fn hybrid_factors_are_clamped() {
        let pred = HybridPredictor::default();
        for _ in 0..100 {
            pred.observe(&stretched_obs(1, 1, 1e6, 64 << 20, [1e6, 1e-6, 1.0]));
        }
        let got = pred
            .predict_deployment(
                &profile(),
                AppClasses::CONSTANT_LINEAR_CONSTANT,
                deployment(1, 1, 1e6).as_ref(),
                64 << 20,
                &HashMap::new(),
            )
            .unwrap();
        let a = analytical(1, 1, 1e6, 64 << 20);
        assert!(got.t_disk <= a.t_disk * 4.0 + 1e-9);
        assert!(got.t_network >= a.t_network * 0.25 - 1e-9);
    }

    #[test]
    fn hybrid_dump_replay_dump_is_a_byte_fixpoint() {
        let pred = HybridPredictor::default();
        for _ in 0..10 {
            pred.observe(&stretched_obs(2, 4, 1e6, 200 << 20, [1.5, 2.0, 0.8]));
        }
        let dump = pred.dump_jsonl();
        let replayed = HybridPredictor::replay_jsonl(&dump).unwrap();
        assert_eq!(replayed.dump_jsonl(), dump);
        assert!(replayed.epoch() > 0);
    }
}
