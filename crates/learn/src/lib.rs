//! `fg-learn` — online *learned* execution-time predictors behind the
//! [`fg_predict::Predictor`] seam.
//!
//! The paper's analytical model predicts from first principles: a
//! profiled per-byte cost per component, scaled by node counts and the
//! nominal WAN bandwidth. That is exactly right until the world drifts
//! away from the profile — a congested link that never recovers, a
//! repository whose disk array runs slower than the machine database
//! says. This crate closes the loop from the scheduler's completed-job
//! [`fg_predict::Observation`] stream back into the predictions:
//!
//! - [`LearnedPredictor`] fits a per-`(app, repository)` ridge
//!   regression ([`ridge`]) over physically-motivated features of the
//!   placement tuple, refit online as observations arrive, with a
//!   trust-region clamp around the analytical anchor.
//! - [`HybridPredictor`] keeps the analytical model's *shape* and
//!   learns only a per-component multiplicative correction, tracked as
//!   an EWMA of observed/predicted ratios — the cheap, robust choice
//!   when drift is a stable scale factor.
//!
//! Both are deterministic (fixed-order arithmetic, no clocks, no
//! randomness; the learned fit is canonicalized so it depends only on
//! the retained sample multiset) and both serialize to versioned JSONL
//! via `dump_jsonl`/`replay_jsonl`, with `dump → replay → dump` a byte
//! fixpoint.

#![warn(missing_docs)]

pub mod predictor;
pub mod ridge;

pub use predictor::{HybridConfig, HybridPredictor, LearnConfig, LearnedPredictor, MODEL_VERSION};
pub use ridge::{fit_ridge, FitError};
