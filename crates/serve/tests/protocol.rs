//! Protocol-layer properties: encode→frame→decode is an identity for
//! every request, response, and event-batch variant; and no corrupted
//! or truncated byte stream is ever accepted silently — every
//! corruption surfaces as a typed [`WireError`] naming the offending
//! frame, and never as a panic or a desynchronised decode.

use fg_sched::{
    Component, CoreEvent, CoreStats, DriftAlarm, JobOutcome, JobSpec, KeyDrift, PlacementInfo,
    PredictionQuote, SubmitOutcome, TelemetrySnapshot, TenantSlo,
};
use fg_serve::frame::{encode_frame, Frame, FrameDecoder, FrameKind, WireError, HEADER_LEN};
use fg_serve::msg::{
    decode_events, decode_metrics, decode_request, decode_response, decode_subscribe,
    encode_events, encode_metrics, encode_request, encode_response, encode_subscribe, DrainedRun,
    EventBatch, Request, Response, ServeMetrics, SubscribeMetrics,
};
use fg_serve::Server;
use proptest::prelude::*;

/// SplitMix64: a tiny deterministic value well for building message
/// fields from a single proptest-drawn seed (the vendored proptest has
/// no combinator strategies).
struct Well(u64);

impl Well {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A finite, often-awkward f64: mixes exact dyadics, decimals that
    /// don't round-trip through short literals, tiny and huge
    /// magnitudes, and signed zero.
    fn f64(&mut self) -> f64 {
        match self.next() % 6 {
            0 => 0.0,
            1 => -0.0,
            2 => (self.next() % 1_000_000) as f64 / 97.0,
            // Random mantissa under a fixed finite exponent: a value
            // in [1, 2) with all 52 fraction bits exercised.
            3 => f64::from_bits((self.next() & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000),
            4 => (self.next() % 1000) as f64 * 1e-300,
            _ => (self.next() % 1000) as f64 * 1e250,
        }
        .abs()
            * if self.next().is_multiple_of(2) { 1.0 } else { -1.0 }
    }

    fn string(&mut self) -> String {
        let choices = ["kmeans", "απόστολος", "a\"b\\c", "", "repo-0\nline", "🦀 serve", "x"];
        choices[(self.next() % choices.len() as u64) as usize].to_string()
    }

    fn opt_f64(&mut self) -> Option<f64> {
        (self.next().is_multiple_of(2)).then(|| self.f64())
    }

    fn opt_string(&mut self) -> Option<String> {
        (self.next().is_multiple_of(2)).then(|| self.string())
    }

    fn job_spec(&mut self) -> JobSpec {
        JobSpec {
            id: (self.next() % 10_000) as usize,
            tenant: (self.next() % 16) as usize,
            app: self.string(),
            dataset_bytes: self.next(),
            arrival: self.f64(),
            deadline_slack: self.f64(),
        }
    }

    fn component(&mut self) -> Component {
        Component::ALL[(self.next() % 3) as usize]
    }

    fn drift_alarm(&mut self) -> DriftAlarm {
        DriftAlarm {
            app: self.string(),
            repo: self.string(),
            component: self.component(),
            at: self.f64(),
            job_id: (self.next() % 10_000) as usize,
            residual: self.f64(),
            z: self.f64(),
            mean: self.f64(),
            samples: self.next() % 10_000,
        }
    }

    fn telemetry_snapshot(&mut self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            now: self.f64(),
            epoch: self.next(),
            samples: self.next() % 100_000,
            tenants: (0..self.next() % 3)
                .map(|t| TenantSlo {
                    tenant: t as usize,
                    completed: self.next() % 100_000,
                    deadline_violations: self.next() % 100_000,
                    violation_rate: self.f64(),
                    mean_quote_error: self.f64(),
                    queue_wait_p99: self.opt_f64(),
                })
                .collect(),
            keys: (0..self.next() % 3)
                .map(|_| KeyDrift {
                    app: self.string(),
                    repo: self.string(),
                    total: self.next() % 100_000,
                    mean: [self.f64(), self.f64(), self.f64()],
                    var: [self.f64(), self.f64(), self.f64()],
                })
                .collect(),
            alarms: (0..self.next() % 3).map(|_| self.drift_alarm()).collect(),
        }
    }

    fn serve_metrics(&mut self) -> ServeMetrics {
        ServeMetrics {
            epoch: self.next(),
            stats: self.core_stats(),
            telemetry: self.telemetry_snapshot(),
        }
    }

    fn core_stats(&mut self) -> CoreStats {
        CoreStats {
            now: self.f64(),
            makespan: self.f64(),
            submitted: self.next() % 100_000,
            admitted: self.next() % 100_000,
            rejected: self.next() % 100_000,
            completed: self.next() % 100_000,
            queued: (self.next() % 1000) as usize,
            running: (self.next() % 1000) as usize,
            suspended: (self.next() % 1000) as usize,
        }
    }

    fn core_event(&mut self) -> CoreEvent {
        match self.next() % 7 {
            0 => CoreEvent::Submitted {
                id: (self.next() % 10_000) as usize,
                tenant: (self.next() % 16) as usize,
                admitted: self.next().is_multiple_of(2),
                reject_reason: self.opt_string(),
                estimate: self.opt_f64(),
            },
            1 => CoreEvent::Placed {
                id: (self.next() % 10_000) as usize,
                at: self.f64(),
                repo: self.string(),
                site: self.string(),
                config: self.string(),
                predicted: self.f64(),
            },
            2 => CoreEvent::Completed {
                id: (self.next() % 10_000) as usize,
                at: self.f64(),
                met_deadline: (self.next().is_multiple_of(2))
                    .then(|| self.next().is_multiple_of(2)),
            },
            3 => CoreEvent::Preempted { id: (self.next() % 10_000) as usize, at: self.f64() },
            4 => CoreEvent::Resumed { id: (self.next() % 10_000) as usize, at: self.f64() },
            5 => CoreEvent::Migrated {
                id: (self.next() % 10_000) as usize,
                at: self.f64(),
                from_repo: self.string(),
                to_repo: self.string(),
            },
            _ => CoreEvent::DriftAlarm { alarm: self.drift_alarm() },
        }
    }

    fn outcome(&mut self) -> JobOutcome {
        JobOutcome {
            id: (self.next() % 10_000) as usize,
            tenant: (self.next() % 16) as usize,
            app: self.string(),
            arrival: self.f64(),
            dataset_bytes: self.next(),
            admitted: self.next().is_multiple_of(2),
            reject_reason: self.opt_string(),
            standalone: self.opt_f64(),
            deadline: self.opt_f64(),
            admission_estimate: self.opt_f64(),
            placement: (self.next().is_multiple_of(2)).then(|| PlacementInfo {
                repo: (self.next() % 8) as usize,
                site: (self.next() % 8) as usize,
                repo_name: self.string(),
                site_name: self.string(),
                config: self.string(),
                data_nodes: (self.next() % 32) as usize,
                compute_nodes: (self.next() % 32) as usize,
            }),
            placed_at: self.opt_f64(),
            predicted: self.opt_f64(),
            disk_end: self.opt_f64(),
            network_end: self.opt_f64(),
            finish: self.opt_f64(),
            preemptions: Vec::new(),
            migration: None,
        }
    }

    /// A complete wire frame of any kind, for corruption and
    /// truncation sweeps over mixed-kind streams.
    fn any_frame(&mut self, seq: u32) -> bytes::Bytes {
        match self.next() % 5 {
            0 => encode_frame(FrameKind::Request, seq, &encode_request(&self.request())),
            1 => encode_frame(FrameKind::Response, seq, &encode_response(&self.response())),
            2 => {
                let batch = EventBatch {
                    events: (0..self.next() % 4).map(|_| self.core_event()).collect(),
                };
                encode_frame(FrameKind::Event, seq, &encode_events(&batch))
            }
            3 => encode_frame(
                FrameKind::SubscribeMetrics,
                seq,
                &encode_subscribe(&SubscribeMetrics { min_epoch: self.next() }),
            ),
            _ => {
                let m = self.serve_metrics();
                encode_frame(FrameKind::MetricsSnapshot, seq, &encode_metrics(&m))
            }
        }
    }

    fn request(&mut self) -> Request {
        match self.next() % 4 {
            0 => Request::Submit { job: self.job_spec() },
            1 => Request::Quote {
                app: self.string(),
                dataset_bytes: self.next(),
                deadline_slack: self.f64(),
            },
            2 => Request::Stats,
            _ => Request::Drain,
        }
    }

    fn response(&mut self) -> Response {
        match self.next() % 6 {
            0 => Response::Submitted {
                outcome: SubmitOutcome {
                    id: (self.next() % 10_000) as usize,
                    admitted: self.next().is_multiple_of(2),
                    reject_reason: self.opt_string(),
                    standalone: self.opt_f64(),
                    deadline: self.opt_f64(),
                    admission_estimate: self.opt_f64(),
                },
            },
            1 => Response::SubmitFailed { reason: self.string() },
            2 => Response::Quoted {
                quote: (self.next().is_multiple_of(2)).then(|| PredictionQuote {
                    standalone: self.f64(),
                    corrected: self.f64(),
                    estimate: self.f64(),
                    would_admit: (self.next().is_multiple_of(2))
                        .then(|| self.next().is_multiple_of(2)),
                }),
            },
            3 => Response::Stats { stats: self.core_stats() },
            4 => Response::Drained {
                result: DrainedRun {
                    outcomes: (0..self.next() % 4).map(|_| self.outcome()).collect(),
                    trace_jsonl: format!("{{\"x\":{}}}\n{}", self.f64(), self.string()),
                    makespan: self.f64(),
                    violations: (0..self.next() % 3).map(|_| self.string()).collect(),
                },
            },
            _ => Response::Error { reason: self.string() },
        }
    }
}

/// Run one payload through the real wire: frame it, push it through a
/// fresh decoder in awkward chunks, return the decoded frame.
fn wire_trip(kind: FrameKind, seq: u32, payload: &[u8]) -> Frame {
    let wire = encode_frame(kind, seq, payload);
    let mut dec = FrameDecoder::new();
    // Split at an arbitrary interior point to exercise partial reads.
    let cut = wire.len() / 3;
    dec.push(&wire[..cut]);
    assert!(matches!(dec.next_frame(), Ok(None)), "a partial frame must not decode");
    dec.push(&wire[cut..]);
    let frame = dec.next_frame().expect("framing").expect("complete");
    dec.finish().expect("no trailing bytes");
    frame
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_request_variant_round_trips(seed in any::<u64>(), seq in any::<u32>()) {
        let mut w = Well(seed);
        let req = w.request();
        let frame = wire_trip(FrameKind::Request, seq, &encode_request(&req));
        prop_assert_eq!(frame.seq, seq);
        prop_assert_eq!(decode_request(&frame, 0).unwrap(), req);
    }

    #[test]
    fn every_response_variant_round_trips(seed in any::<u64>(), seq in any::<u32>()) {
        let mut w = Well(seed);
        let resp = w.response();
        let frame = wire_trip(FrameKind::Response, seq, &encode_response(&resp));
        prop_assert_eq!(decode_response(&frame, 0).unwrap(), resp);
    }

    #[test]
    fn streamed_event_batches_round_trip(seed in any::<u64>(), seq in any::<u32>()) {
        let mut w = Well(seed);
        let batch = EventBatch { events: (0..w.next() % 8).map(|_| w.core_event()).collect() };
        let frame = wire_trip(FrameKind::Event, seq, &encode_events(&batch));
        prop_assert_eq!(decode_events(&frame, 0).unwrap(), batch);
    }

    #[test]
    fn metrics_subscriptions_round_trip(seed in any::<u64>(), seq in any::<u32>()) {
        let mut w = Well(seed);
        let sub = SubscribeMetrics { min_epoch: w.next() };
        let frame = wire_trip(FrameKind::SubscribeMetrics, seq, &encode_subscribe(&sub));
        prop_assert_eq!(frame.seq, seq);
        prop_assert_eq!(decode_subscribe(&frame, 0).unwrap(), sub);
    }

    /// The full telemetry plane — counters, per-tenant SLO gauges,
    /// per-key drift statistics, standing alarms — survives the wire
    /// bit for bit.
    #[test]
    fn metrics_snapshots_round_trip(seed in any::<u64>(), seq in any::<u32>()) {
        let mut w = Well(seed);
        let m = w.serve_metrics();
        let frame = wire_trip(FrameKind::MetricsSnapshot, seq, &encode_metrics(&m));
        prop_assert_eq!(decode_metrics(&frame, 0).unwrap(), m);
    }

    /// Corruption sweep: flip any byte of a valid multi-frame stream
    /// with any non-zero mask. Decoding must fail with a typed error
    /// attributing a frame at or before the corruption — never panic,
    /// never accept the stream.
    #[test]
    fn any_single_byte_corruption_is_rejected(
        seed in any::<u64>(),
        pos_pick in any::<u64>(),
        mask_pick in any::<u8>(),
    ) {
        let mask = if mask_pick == 0 { 1 } else { mask_pick };
        let mut w = Well(seed);
        let mut wire = Vec::new();
        for seq in 0..3u32 {
            wire.extend(w.any_frame(seq).iter());
        }
        let pos = (pos_pick % wire.len() as u64) as usize;
        wire[pos] ^= mask;

        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        let mut decoded = 0u64;
        let err = loop {
            match dec.next_frame() {
                Ok(Some(_)) => decoded += 1,
                // A length corruption can leave the decoder waiting for
                // bytes that never come; finish() must then report it.
                Ok(None) => break dec.finish().expect_err("corruption must not decode cleanly"),
                Err(e) => break e,
            }
        };
        // The error names a frame at or after the ones that decoded
        // cleanly, and corruption never rewrites history: every frame
        // reported decoded started before the flipped byte... or the
        // flip landed in its payload's JSON and was caught by checksum
        // first, so a decoded frame is always byte-identical to what
        // was sent.
        match err {
            WireError::BadMagic { frame, .. }
            | WireError::BadVersion { frame, .. }
            | WireError::BadKind { frame, .. }
            | WireError::Oversized { frame, .. }
            | WireError::BadChecksum { frame, .. }
            | WireError::Truncated { frame, .. } => prop_assert_eq!(frame, decoded),
            WireError::BadPayload { .. } | WireError::Poisoned => {
                prop_assert!(false, "framing layer reported a message-layer error")
            }
        }
    }

    /// Truncation sweep: cutting the stream at any point either ends
    /// cleanly on a frame boundary (fewer frames decoded) or reports
    /// `Truncated` with the exact byte counts — never a panic, never a
    /// partial frame accepted.
    #[test]
    fn any_truncation_is_detected_or_falls_on_a_boundary(
        seed in any::<u64>(),
        cut_pick in any::<u64>(),
    ) {
        let mut w = Well(seed);
        let mut wire = Vec::new();
        let mut boundaries = vec![0usize];
        for seq in 0..3u32 {
            wire.extend(w.any_frame(seq).iter());
            boundaries.push(wire.len());
        }
        let cut = (cut_pick % wire.len() as u64) as usize;

        let mut dec = FrameDecoder::new();
        dec.push(&wire[..cut]);
        while let Ok(Some(_)) = dec.next_frame() {}
        if boundaries.contains(&cut) {
            prop_assert_eq!(dec.finish(), Ok(()));
        } else {
            let err = dec.finish().expect_err("mid-frame cut must be reported");
            match err {
                WireError::Truncated { offset, got, .. } => {
                    let frame_start = *boundaries.iter().filter(|&&b| b <= cut).max().unwrap();
                    prop_assert_eq!(offset, frame_start as u64);
                    prop_assert_eq!(got, cut - frame_start);
                }
                other => prop_assert!(false, "expected Truncated, got {}", other),
            }
        }
    }
}

/// A server session answers a corrupt client stream with a typed
/// error response naming the byte offset, then hangs up — it never
/// panics and never guesses at resynchronisation.
#[test]
fn a_live_session_reports_corruption_and_hangs_up() {
    use fg_bench::figures::sched_models;
    use fg_sched::{GridSpec, Policy, Scheduler};

    let server = Server::start(Scheduler::new(GridSpec::demo(sched_models()), Policy::Fcfs));
    let conn = server.connect();
    // A valid stats request first, so the corruption lands mid-stream.
    conn.send(&encode_frame(FrameKind::Request, 0, &encode_request(&Request::Stats)));
    let mut garbage =
        encode_frame(FrameKind::Request, 1, &encode_request(&Request::Drain)).to_vec();
    garbage[HEADER_LEN] ^= 0x40; // corrupt the payload
    conn.send(&garbage);

    let mut dec = FrameDecoder::new();
    let mut responses = Vec::new();
    while let Some(chunk) = conn.recv() {
        dec.push(&chunk);
        while let Some(frame) = dec.next_frame().expect("server output stays well-framed") {
            responses.push(decode_response(&frame, dec.frames() - 1).expect("decodes"));
        }
        if responses.len() == 2 {
            break;
        }
    }
    assert!(matches!(responses[0], Response::Stats { .. }));
    match &responses[1] {
        Response::Error { reason } => {
            assert!(
                reason.contains("frame 1") && reason.contains("checksum"),
                "error must name the offending frame: {reason}"
            );
        }
        other => panic!("expected a typed error response, got {other:?}"),
    }
    drop(conn);
    server.shutdown();
}
