//! Criterion benchmarks for the service path: frame codec throughput,
//! quote requests through the full wire round trip, and a submit
//! stream replayed end to end. The ratcheted numbers live in
//! `BENCH_serve.json` (produced by `fg-bench`'s `bench_serve` bin);
//! these benches are for interactive profiling.

use criterion::{criterion_group, criterion_main, Criterion};
use fg_bench::figures::sched_models;
use fg_sched::{GridSpec, LoadLevel, Policy, Scheduler, WorkloadShape, WorkloadSpec};
use fg_serve::frame::{encode_frame, FrameDecoder, FrameKind};
use fg_serve::{replay, ServeClient, Server};
use std::hint::black_box;

fn scheduler() -> Scheduler {
    Scheduler::new(GridSpec::demo(sched_models()), Policy::EdfAdmit)
}

fn frame_codec(c: &mut Criterion) {
    let payload = vec![0x5a_u8; 512];
    c.bench_function("frame-encode-decode-512B", |b| {
        b.iter(|| {
            let wire = encode_frame(FrameKind::Request, 7, black_box(&payload));
            let mut dec = FrameDecoder::new();
            dec.push(&wire);
            dec.next_frame().unwrap().unwrap()
        })
    });
}

fn quote_round_trip(c: &mut Criterion) {
    let server = Server::start(scheduler());
    let mut client = ServeClient::connect(&server);
    c.bench_function("quote-wire-round-trip", |b| {
        b.iter(|| client.quote(black_box("kmeans"), 64 << 20, 2.0).unwrap())
    });
    drop(client);
    server.shutdown();
}

fn replay_heavy_tail(c: &mut Criterion) {
    let grid = GridSpec::demo(sched_models());
    let names: Vec<&str> = grid.apps.iter().map(|(n, _)| n.as_str()).collect();
    let jobs =
        WorkloadSpec::shaped(WorkloadShape::HeavyTail, LoadLevel::Light, &names, 42).generate();
    c.bench_function("replay-heavy-tail-light", |b| {
        b.iter(|| {
            let server = Server::start(scheduler());
            let run = replay(&server, &jobs, None).unwrap();
            server.shutdown();
            run.drained.makespan
        })
    });
}

criterion_group!(benches, frame_codec, quote_round_trip, replay_heavy_tail);
criterion_main!(benches);
