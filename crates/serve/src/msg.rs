//! The message layer: typed requests, responses, and streamed event
//! batches, carried as externally-tagged JSON inside [`frame`] frames.
//!
//! Encoding is canonical — `serde_json`'s field order follows the
//! struct declaration and floats print in shortest-round-trip form —
//! so encode→frame→decode is an identity on every variant
//! (`tests/protocol.rs` pins this by property).
//!
//! [`frame`]: crate::frame

use crate::frame::{Frame, FrameKind, WireError};
use fg_sched::JobSpec;
use fg_sched::{
    CoreEvent, CoreStats, JobOutcome, PredictionQuote, SchedResult, SubmitOutcome,
    TelemetrySnapshot,
};
use serde::{Deserialize, Serialize};

/// A client-to-server request (frame kind 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit a job to the live scheduler; arrivals must be
    /// non-decreasing in `(arrival, id)` order across the session.
    Submit {
        /// The job, in the same shape the workload generator emits.
        job: JobSpec,
    },
    /// Ask what admission estimate a hypothetical job would receive
    /// right now, without submitting anything. Answered by the query
    /// pool from a lock-free snapshot — never by the core thread.
    Quote {
        /// Application name from the grid's menu.
        app: String,
        /// Dataset size in bytes.
        dataset_bytes: u64,
        /// Deadline slack multiplier (deadline = now + slack × standalone).
        deadline_slack: f64,
    },
    /// Ask for the live counters. Also answered from the snapshot.
    Stats,
    /// Run the event loop to completion and return the full result;
    /// terminates the session's scheduling state.
    Drain,
}

/// A server-to-client reply (frame kind 2), echoing the request's
/// sequence number.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The submission was processed (admitted or rejected by policy —
    /// see [`SubmitOutcome::admitted`]).
    Submitted {
        /// What the scheduler decided at submission.
        outcome: SubmitOutcome,
    },
    /// The submission was invalid (duplicate id, out-of-order arrival,
    /// non-finite arrival) and did not enter the machine.
    SubmitFailed {
        /// The [`fg_sched::SubmitError`], rendered.
        reason: String,
    },
    /// The quoted prediction; `None` when the app is unknown or
    /// nothing places even on an empty grid.
    Quoted {
        /// The quote.
        quote: Option<PredictionQuote>,
    },
    /// The live counters.
    Stats {
        /// The counters.
        stats: CoreStats,
    },
    /// The drained run.
    Drained {
        /// Everything needed to reconstruct the [`SchedResult`].
        result: DrainedRun,
    },
    /// The request could not be served (e.g. it arrived after drain).
    Error {
        /// What went wrong.
        reason: String,
    },
}

/// A batch of scheduling events streamed ahead of a response (frame
/// kind 3). Event frames carry their own sequence counter, independent
/// of the request/response numbering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventBatch {
    /// The events, in decision order.
    pub events: Vec<CoreEvent>,
}

/// A metrics subscription (frame kind 4): ask the server to push a
/// [`ServeMetrics`] snapshot whenever the telemetry plane has changed
/// since the last one this session saw.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubscribeMetrics {
    /// Suppress snapshots whose epoch is at or below this value
    /// (0 subscribes from the beginning). Lets a reconnecting client
    /// skip the state it already drained.
    pub min_epoch: u64,
}

/// A telemetry snapshot on the wire (frame kind 5): the live counters
/// plus the full telemetry plane — per-tenant SLO gauges (deadline
/// violation rate, mean quote error, windowed queue-wait P99),
/// per-key drift statistics, and every alarm raised so far.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeMetrics {
    /// The telemetry change counter at snapshot time; a subscriber
    /// sees strictly increasing epochs.
    pub epoch: u64,
    /// The core's coarse progress counters.
    pub stats: CoreStats,
    /// The telemetry plane.
    pub telemetry: TelemetrySnapshot,
}

/// The result of a drained run, flattened for the wire: the span tree
/// travels as its canonical JSONL dump, which round-trips bit-exactly
/// through [`fg_trace::from_jsonl`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrainedRun {
    /// One outcome per submitted job, in submission-id order.
    pub outcomes: Vec<JobOutcome>,
    /// The span tree and metrics snapshot as JSONL text.
    pub trace_jsonl: String,
    /// Last completion instant.
    pub makespan: f64,
    /// Invariant violations detected during the run.
    pub violations: Vec<String>,
}

impl DrainedRun {
    /// Flatten a [`SchedResult`] for the wire.
    pub fn from_result(r: &SchedResult) -> DrainedRun {
        DrainedRun {
            outcomes: r.outcomes.clone(),
            trace_jsonl: fg_trace::to_jsonl(&r.trace),
            makespan: r.makespan,
            violations: r.violations.clone(),
        }
    }

    /// Reconstruct the [`SchedResult`] on the client side.
    pub fn into_result(self) -> Result<SchedResult, String> {
        let trace = fg_trace::from_jsonl(&self.trace_jsonl)?;
        Ok(SchedResult {
            outcomes: self.outcomes,
            trace,
            makespan: self.makespan,
            violations: self.violations,
            // The wire result carries no telemetry: the plane is
            // streamed live through `MetricsSnapshot` frames instead
            // of being replayed at drain time.
            telemetry: None,
        })
    }
}

fn decode_payload<T: Deserialize>(frame: &Frame, ord: u64, what: &str) -> Result<T, WireError> {
    let text = std::str::from_utf8(&frame.payload).map_err(|e| WireError::BadPayload {
        frame: ord,
        seq: frame.seq,
        reason: format!("{what}: payload is not UTF-8: {e}"),
    })?;
    serde_json::from_str(text).map_err(|e| WireError::BadPayload {
        frame: ord,
        seq: frame.seq,
        reason: format!("{what}: {e}"),
    })
}

fn expect_kind(frame: &Frame, ord: u64, kind: FrameKind, what: &str) -> Result<(), WireError> {
    if frame.kind != kind {
        return Err(WireError::BadPayload {
            frame: ord,
            seq: frame.seq,
            reason: format!("{what}: unexpected frame kind {:?}", frame.kind),
        });
    }
    Ok(())
}

/// Serialize a request payload (the JSON document, unframed).
pub fn encode_request(req: &Request) -> Vec<u8> {
    serde_json::to_string(req).expect("request serialization is infallible").into_bytes()
}

/// Parse a request out of a decoded frame; `ord` is the frame's
/// 0-based ordinal in the stream, for error attribution.
pub fn decode_request(frame: &Frame, ord: u64) -> Result<Request, WireError> {
    expect_kind(frame, ord, FrameKind::Request, "request")?;
    decode_payload(frame, ord, "request")
}

/// Serialize a response payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    serde_json::to_string(resp).expect("response serialization is infallible").into_bytes()
}

/// Parse a response out of a decoded frame; `ord` as in
/// [`decode_request`].
pub fn decode_response(frame: &Frame, ord: u64) -> Result<Response, WireError> {
    expect_kind(frame, ord, FrameKind::Response, "response")?;
    decode_payload(frame, ord, "response")
}

/// Serialize an event batch payload.
pub fn encode_events(batch: &EventBatch) -> Vec<u8> {
    serde_json::to_string(batch).expect("event serialization is infallible").into_bytes()
}

/// Parse an event batch out of a decoded frame; `ord` as in
/// [`decode_request`].
pub fn decode_events(frame: &Frame, ord: u64) -> Result<EventBatch, WireError> {
    expect_kind(frame, ord, FrameKind::Event, "event batch")?;
    decode_payload(frame, ord, "event batch")
}

/// Serialize a metrics-subscription payload.
pub fn encode_subscribe(sub: &SubscribeMetrics) -> Vec<u8> {
    serde_json::to_string(sub).expect("subscription serialization is infallible").into_bytes()
}

/// Parse a metrics subscription out of a decoded frame; `ord` as in
/// [`decode_request`].
pub fn decode_subscribe(frame: &Frame, ord: u64) -> Result<SubscribeMetrics, WireError> {
    expect_kind(frame, ord, FrameKind::SubscribeMetrics, "metrics subscription")?;
    decode_payload(frame, ord, "metrics subscription")
}

/// Serialize a metrics-snapshot payload.
pub fn encode_metrics(m: &ServeMetrics) -> Vec<u8> {
    serde_json::to_string(m).expect("metrics serialization is infallible").into_bytes()
}

/// Parse a metrics snapshot out of a decoded frame; `ord` as in
/// [`decode_request`].
pub fn decode_metrics(frame: &Frame, ord: u64) -> Result<ServeMetrics, WireError> {
    expect_kind(frame, ord, FrameKind::MetricsSnapshot, "metrics snapshot")?;
    decode_payload(frame, ord, "metrics snapshot")
}
