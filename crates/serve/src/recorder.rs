//! The flight recorder: a bounded ring of recent scheduling events
//! plus the machinery to dump a self-contained JSONL incident bundle
//! the moment something goes wrong — a drift alarm from the accuracy
//! ledger, a tenant blowing through its deadline SLO, or a poisoned
//! frame decoder on a session.
//!
//! A bundle is everything a post-mortem needs in one document: the
//! tripping reason, the core counters at that instant, the last-N
//! decision events, the accuracy ledger's tail, and every drift alarm
//! raised so far. Everything is stamped with the *sim* clock, so two
//! identical runs produce byte-identical bundles — the golden test in
//! `tests/serve_telemetry.rs` pins exactly that.

use fg_sched::{AccuracySample, CoreEvent, CoreStats, DriftAlarm, TelemetrySnapshot};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Format version written in every bundle header.
pub const INCIDENT_VERSION: u32 = 1;

/// Flight-recorder tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecorderConfig {
    /// Decision events retained in the ring.
    pub capacity: usize,
    /// Accuracy samples included in a bundle's ledger tail.
    pub ledger_tail: usize,
    /// Deadline-violation rate at which a tenant's SLO counts as
    /// breached.
    pub slo_max_violation_rate: f64,
    /// Completions a tenant must have before its SLO arms (a single
    /// early miss is not an incident).
    pub slo_min_completed: u64,
}

impl Default for RecorderConfig {
    fn default() -> RecorderConfig {
        RecorderConfig {
            capacity: 256,
            ledger_tail: 32,
            slo_max_violation_rate: 0.5,
            slo_min_completed: 16,
        }
    }
}

/// Why a bundle was cut.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IncidentReason {
    /// The accuracy ledger's drift detector fired.
    Drift {
        /// The tripping alarm.
        alarm: DriftAlarm,
    },
    /// A tenant's deadline-violation rate crossed the configured SLO.
    SloBreach {
        /// Tenant index.
        tenant: usize,
        /// The violation rate at the breach.
        violation_rate: f64,
        /// Completions the rate was measured over.
        completed: u64,
    },
    /// A session's frame decoder was poisoned by stream corruption.
    DecodePoisoned {
        /// The rendered [`WireError`](crate::frame::WireError).
        error: String,
    },
}

/// One ring entry: the recorder's own monotone sequence number plus
/// the event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordedEvent {
    /// Position in the full event stream (survives ring eviction, so a
    /// bundle shows *where* its window sits).
    pub seq: u64,
    /// The decision event.
    pub event: CoreEvent,
}

/// A self-contained incident document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncidentBundle {
    /// Format version ([`INCIDENT_VERSION`]).
    pub version: u32,
    /// What tripped the recorder.
    pub reason: IncidentReason,
    /// Sim-clock instant of the trip.
    pub at: f64,
    /// Core counters at the trip (`None` when the session was already
    /// drained, as for a post-drain decode poisoning).
    pub stats: Option<CoreStats>,
    /// The last-N decision events, oldest first.
    pub events: Vec<RecordedEvent>,
    /// The accuracy ledger's newest retained samples, ingestion order.
    pub ledger_tail: Vec<AccuracySample>,
    /// Every drift alarm raised before the trip, firing order.
    pub alarms: Vec<DriftAlarm>,
}

/// One non-header line of a bundle dump (externally tagged).
#[derive(Serialize, Deserialize)]
enum BundleLine {
    /// A ring entry.
    Event(RecordedEvent),
    /// A ledger-tail sample.
    Sample(AccuracySample),
    /// A prior drift alarm.
    Alarm(DriftAlarm),
}

impl IncidentBundle {
    /// Render the bundle as self-contained JSONL: a header line naming
    /// the format, reason, instant, and counters, then one line per
    /// retained event, ledger sample, and prior alarm.
    pub fn to_jsonl(&self) -> String {
        #[derive(Serialize)]
        struct Header {
            kind: String,
            version: u32,
            reason: IncidentReason,
            at: f64,
            stats: Option<CoreStats>,
        }
        let mut out = String::new();
        let header = Header {
            kind: "fg-incident".to_string(),
            version: self.version,
            reason: self.reason.clone(),
            at: self.at,
            stats: self.stats.clone(),
        };
        out.push_str(&serde_json::to_string(&header).expect("header serializes"));
        out.push('\n');
        let mut line = |l: &BundleLine| {
            out.push_str(&serde_json::to_string(l).expect("bundle line serializes"));
            out.push('\n');
        };
        for e in &self.events {
            line(&BundleLine::Event(e.clone()));
        }
        for s in &self.ledger_tail {
            line(&BundleLine::Sample(s.clone()));
        }
        for a in &self.alarms {
            line(&BundleLine::Alarm(a.clone()));
        }
        out
    }
}

/// The bounded event ring and SLO trip state. The engine records every
/// decision event here and cuts bundles on trip conditions; completed
/// bundles are drained with [`take_bundles`](FlightRecorder::take_bundles).
#[derive(Debug)]
pub struct FlightRecorder {
    cfg: RecorderConfig,
    ring: VecDeque<RecordedEvent>,
    seq: u64,
    /// Tenants whose SLO breach has already been bundled — one bundle
    /// per tenant, not one per completion past the threshold.
    slo_tripped: Vec<bool>,
    bundles: Vec<IncidentBundle>,
}

impl FlightRecorder {
    /// An empty recorder under `cfg`.
    pub fn new(cfg: RecorderConfig) -> FlightRecorder {
        assert!(cfg.capacity >= 1, "recorder needs at least one slot");
        FlightRecorder {
            cfg,
            ring: VecDeque::new(),
            seq: 0,
            slo_tripped: Vec::new(),
            bundles: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> RecorderConfig {
        self.cfg
    }

    /// Events recorded ever (≥ the ring's current length).
    pub fn recorded(&self) -> u64 {
        self.seq
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &RecordedEvent> {
        self.ring.iter()
    }

    /// Append one decision event to the ring.
    pub fn record(&mut self, event: &CoreEvent) {
        self.ring.push_back(RecordedEvent { seq: self.seq, event: event.clone() });
        self.seq += 1;
        while self.ring.len() > self.cfg.capacity {
            self.ring.pop_front();
        }
    }

    /// SLO trip check against a fresh telemetry snapshot: returns a
    /// reason per *newly* breached tenant and latches them so each
    /// tenant bundles at most once.
    pub fn slo_breaches(&mut self, snapshot: &TelemetrySnapshot) -> Vec<IncidentReason> {
        let mut out = Vec::new();
        for t in &snapshot.tenants {
            if self.slo_tripped.len() <= t.tenant {
                self.slo_tripped.resize(t.tenant + 1, false);
            }
            if self.slo_tripped[t.tenant]
                || t.completed < self.cfg.slo_min_completed
                || t.violation_rate < self.cfg.slo_max_violation_rate
            {
                continue;
            }
            self.slo_tripped[t.tenant] = true;
            out.push(IncidentReason::SloBreach {
                tenant: t.tenant,
                violation_rate: t.violation_rate,
                completed: t.completed,
            });
        }
        out
    }

    /// Cut a bundle: freeze the ring plus the supplied context under
    /// `reason` and queue it for collection.
    pub fn trip(
        &mut self,
        reason: IncidentReason,
        at: f64,
        stats: Option<CoreStats>,
        ledger_tail: Vec<AccuracySample>,
        alarms: Vec<DriftAlarm>,
    ) {
        self.bundles.push(IncidentBundle {
            version: INCIDENT_VERSION,
            reason,
            at,
            stats,
            events: self.ring.iter().cloned().collect(),
            ledger_tail,
            alarms,
        });
    }

    /// Drain the bundles cut since the last call.
    pub fn take_bundles(&mut self) -> Vec<IncidentBundle> {
        std::mem::take(&mut self.bundles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(id: usize) -> CoreEvent {
        CoreEvent::Completed { id, at: id as f64, met_deadline: Some(true) }
    }

    #[test]
    fn the_ring_is_bounded_and_seq_survives_eviction() {
        let cfg = RecorderConfig { capacity: 3, ..RecorderConfig::default() };
        let mut r = FlightRecorder::new(cfg);
        for i in 0..10 {
            r.record(&event(i));
        }
        let seqs: Vec<u64> = r.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
        assert_eq!(r.recorded(), 10);
    }

    #[test]
    fn bundles_render_as_versioned_jsonl() {
        let mut r = FlightRecorder::new(RecorderConfig::default());
        r.record(&event(0));
        r.record(&event(1));
        r.trip(
            IncidentReason::DecodePoisoned { error: "bad magic".into() },
            5.0,
            None,
            Vec::new(),
            Vec::new(),
        );
        let bundles = r.take_bundles();
        assert_eq!(bundles.len(), 1);
        let text = bundles[0].to_jsonl();
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        assert!(header.contains(r#""kind":"fg-incident""#), "{header}");
        assert!(header.contains(r#""version":1"#), "{header}");
        assert!(header.contains("bad magic"), "{header}");
        assert_eq!(lines.count(), 2, "one line per retained event");
        assert!(r.take_bundles().is_empty(), "bundles drain once");
    }

    #[test]
    fn slo_breaches_latch_per_tenant() {
        use fg_sched::TenantSlo;
        let cfg = RecorderConfig {
            slo_min_completed: 4,
            slo_max_violation_rate: 0.5,
            ..RecorderConfig::default()
        };
        let mut r = FlightRecorder::new(cfg);
        let snap = |completed: u64, violations: u64| TelemetrySnapshot {
            now: 0.0,
            epoch: completed,
            samples: 0,
            tenants: vec![TenantSlo {
                tenant: 0,
                completed,
                deadline_violations: violations,
                violation_rate: violations as f64 / completed.max(1) as f64,
                mean_quote_error: 0.0,
                queue_wait_p99: None,
            }],
            keys: Vec::new(),
            alarms: Vec::new(),
        };
        assert!(r.slo_breaches(&snap(2, 2)).is_empty(), "below min_completed");
        assert!(r.slo_breaches(&snap(4, 1)).is_empty(), "below the rate");
        let fired = r.slo_breaches(&snap(4, 3));
        assert_eq!(fired.len(), 1);
        assert!(r.slo_breaches(&snap(8, 7)).is_empty(), "latched: one bundle per tenant");
    }
}
