//! The threaded server: one core thread owning the decision state, a
//! thread-per-core query pool answering predictions from a lock-free
//! snapshot, and one session thread per connection speaking the wire
//! protocol over an in-process byte pipe.
//!
//! Threading model:
//!
//! * **Core thread** — the only thread that ever touches the
//!   [`SchedCore`] (whose trace counters are deliberately not `Send`,
//!   so the compiler enforces this). It serialises submissions and the
//!   final drain, and republishes a fresh [`SchedSnapshot`] after
//!   every state change — *before* acknowledging the request, so a
//!   client that has its submit response is guaranteed the next quote
//!   reflects that submission.
//! * **Query pool** — `available_parallelism` workers. Quotes and
//!   stats are answered purely from the published snapshot (every
//!   [`SchedSnapshot`] method takes `&self`), so arbitrarily many
//!   predictions run concurrently without ever blocking the core.
//! * **Session threads** — one per [`connect`](Server::connect). They
//!   decode frames, route submissions to the core and queries to the
//!   pool, and stream event frames back ahead of each response.
//!
//! The transport is an in-process pipe rather than a socket: the wire
//! bytes, framing, and thread handoffs are all real, but tests stay
//! hermetic and the protocol layer stays reusable over any transport
//! that can move bytes.

use crate::engine::ServerEngine;
use crate::frame::{encode_frame, FrameDecoder, FrameKind, WireError};
use crate::msg::{
    decode_request, decode_subscribe, encode_events, encode_metrics, encode_response, EventBatch,
    Request, Response, ServeMetrics,
};
use crate::recorder::IncidentBundle;
use fg_sched::{CoreEvent, CoreStats, SchedSnapshot, Scheduler};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::{self, JoinHandle};

/// One direction of a byte stream: a blocking, closeable in-memory
/// pipe (unbounded — both peers are in-process and well-behaved).
#[derive(Clone, Debug)]
struct Pipe {
    state: Arc<(Mutex<PipeState>, Condvar)>,
}

#[derive(Debug, Default)]
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

impl Pipe {
    fn new() -> Pipe {
        Pipe { state: Arc::new((Mutex::new(PipeState::default()), Condvar::new())) }
    }

    /// Append bytes; silently dropped once the pipe is closed (the
    /// reader is gone, there is nobody left to care).
    fn write(&self, bytes: &[u8]) {
        let (lock, cv) = &*self.state;
        let mut st = lock.lock().expect("pipe lock");
        if !st.closed {
            st.buf.extend(bytes);
            cv.notify_all();
        }
    }

    /// Block until bytes are available; `None` at end-of-stream.
    fn read(&self) -> Option<Vec<u8>> {
        let (lock, cv) = &*self.state;
        let mut st = lock.lock().expect("pipe lock");
        loop {
            if !st.buf.is_empty() {
                return Some(st.buf.drain(..).collect());
            }
            if st.closed {
                return None;
            }
            st = cv.wait(st).expect("pipe lock");
        }
    }

    fn close(&self) {
        let (lock, cv) = &*self.state;
        lock.lock().expect("pipe lock").closed = true;
        cv.notify_all();
    }
}

/// One end of a duplex byte connection. Dropping an end closes its
/// outgoing direction, which the peer observes as end-of-stream.
#[derive(Debug)]
pub struct WireConn {
    tx: Pipe,
    rx: Pipe,
}

impl WireConn {
    /// A connected pair: bytes sent on one end arrive on the other.
    pub fn pair() -> (WireConn, WireConn) {
        let (a, b) = (Pipe::new(), Pipe::new());
        (WireConn { tx: a.clone(), rx: b.clone() }, WireConn { tx: b, rx: a })
    }

    /// Send bytes to the peer.
    pub fn send(&self, bytes: &[u8]) {
        self.tx.write(bytes);
    }

    /// Block for the next chunk from the peer; `None` once the peer
    /// has closed and the stream is drained.
    pub fn recv(&self) -> Option<Vec<u8>> {
        self.rx.read()
    }
}

impl Drop for WireConn {
    fn drop(&mut self) {
        self.tx.close();
    }
}

/// What the core thread has published for the query pool: the
/// snapshot-and-counters pair from after the most recent state change,
/// `None` once the session is drained.
type Published = Arc<RwLock<Option<(SchedSnapshot, CoreStats)>>>;

/// The telemetry side-channel the core thread publishes into and the
/// session threads stream from. The [`AtomicU64`] carries the latest
/// published epoch, so a subscribed session pays exactly one relaxed
/// load per response to learn nothing has changed — the structural
/// guarantee behind the "<5% subscriber overhead on the quote path"
/// figure claim.
#[derive(Debug, Default)]
struct MetricsHub {
    epoch: AtomicU64,
    latest: RwLock<Option<ServeMetrics>>,
}

/// Epoch value meaning "nothing published yet".
const EPOCH_NONE: u64 = u64::MAX;

enum CoreMsg {
    Handle {
        req: Request,
        reply: mpsc::Sender<(Response, Vec<CoreEvent>)>,
    },
    /// A session's decoder was poisoned; the engine cuts an incident
    /// bundle. Fire-and-forget: the session is already hanging up.
    Poisoned {
        error: String,
    },
}

enum QueryMsg {
    Handle { req: Request, reply: mpsc::Sender<(Response, Vec<CoreEvent>)> },
}

/// The running service. Dropping (or [`shutdown`](Server::shutdown))
/// stops the core thread and the query pool; open sessions end when
/// their client disconnects.
#[derive(Debug)]
pub struct Server {
    core_tx: mpsc::Sender<CoreMsg>,
    query_tx: mpsc::Sender<QueryMsg>,
    workers: usize,
    threads: Vec<JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
    metrics: Arc<MetricsHub>,
    incidents: Arc<Mutex<Vec<IncidentBundle>>>,
}

impl Server {
    /// Start the service for one scheduling session over `cfg`'s grid
    /// and policy.
    pub fn start(cfg: Scheduler) -> Server {
        let published: Published = Arc::new(RwLock::new(None));
        let metrics =
            Arc::new(MetricsHub { epoch: AtomicU64::new(EPOCH_NONE), latest: RwLock::new(None) });
        let incidents: Arc<Mutex<Vec<IncidentBundle>>> = Arc::default();
        let (core_tx, core_rx) = mpsc::channel::<CoreMsg>();
        let (query_tx, query_rx) = mpsc::channel::<QueryMsg>();
        let mut threads = Vec::new();

        let pub_core = Arc::clone(&published);
        let hub_core = Arc::clone(&metrics);
        let incidents_core = Arc::clone(&incidents);
        threads.push(
            thread::Builder::new()
                .name("fg-serve-core".into())
                .spawn(move || core_loop(cfg, core_rx, pub_core, hub_core, incidents_core))
                .expect("spawn core thread"),
        );

        let workers = thread::available_parallelism().map_or(2, usize::from);
        let query_rx = Arc::new(Mutex::new(query_rx));
        for i in 0..workers {
            let rx = Arc::clone(&query_rx);
            let published = Arc::clone(&published);
            threads.push(
                thread::Builder::new()
                    .name(format!("fg-serve-query-{i}"))
                    .spawn(move || query_loop(rx, published))
                    .expect("spawn query worker"),
            );
        }

        Server { core_tx, query_tx, workers, threads, sessions: Arc::default(), metrics, incidents }
    }

    /// Query-pool width (one worker per available core).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Incident bundles the flight recorder has cut so far (drift
    /// alarms, SLO breaches, decode poisonings), in trip order.
    pub fn incidents(&self) -> Vec<IncidentBundle> {
        self.incidents.lock().expect("incident registry lock").clone()
    }

    /// Open a connection: spawns a session thread and returns the
    /// client end of the wire.
    pub fn connect(&self) -> WireConn {
        let (client_end, server_end) = WireConn::pair();
        let core_tx = self.core_tx.clone();
        let query_tx = self.query_tx.clone();
        let hub = Arc::clone(&self.metrics);
        let handle = thread::Builder::new()
            .name("fg-serve-session".into())
            .spawn(move || session_loop(server_end, core_tx, query_tx, hub))
            .expect("spawn session thread");
        self.sessions.lock().expect("session registry lock").push(handle);
        client_end
    }

    /// Stop the service and join every thread. Sessions whose clients
    /// are still connected are waited on, so drop clients first.
    pub fn shutdown(self) {
        let Server { core_tx, query_tx, threads, sessions, .. } = self;
        // Sessions hold channel clones; the core and pool loops end
        // once every sender is gone, so wait for the sessions first.
        drop(core_tx);
        drop(query_tx);
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *sessions.lock().expect("session registry lock"));
        for h in handles {
            let _ = h.join();
        }
        for h in threads {
            let _ = h.join();
        }
    }
}

fn core_loop(
    cfg: Scheduler,
    rx: mpsc::Receiver<CoreMsg>,
    published: Published,
    hub: Arc<MetricsHub>,
    incidents: Arc<Mutex<Vec<IncidentBundle>>>,
) {
    // The decision core is built here, on the core thread: it is not
    // `Send`, only its configuration is.
    let mut engine = ServerEngine::new(cfg);
    publish(&published, &engine);
    publish_metrics(&hub, &mut engine);
    while let Ok(msg) = rx.recv() {
        match msg {
            CoreMsg::Handle { req, reply } => {
                let out = engine.handle(req);
                // Publish before acknowledging: once a client sees its
                // response, every later quote reflects that submission
                // — and any telemetry change rides the same ordering.
                publish(&published, &engine);
                publish_metrics(&hub, &mut engine);
                collect_incidents(&incidents, &mut engine);
                let _ = reply.send(out);
            }
            CoreMsg::Poisoned { error } => {
                engine.decode_poisoned(error);
                collect_incidents(&incidents, &mut engine);
            }
        }
    }
}

fn publish(published: &Published, engine: &ServerEngine) {
    let fresh = engine.snapshot().zip(engine.stats());
    *published.write().expect("published lock") = fresh;
}

/// Push a fresh telemetry snapshot into the hub — but only when the
/// engine says the plane actually changed (epoch-gated), and with the
/// epoch store ordered *after* the snapshot write so a session that
/// observes the new epoch always finds the matching snapshot.
fn publish_metrics(hub: &MetricsHub, engine: &mut ServerEngine) {
    if let Some(m) = engine.metrics_if_changed() {
        let epoch = m.epoch;
        *hub.latest.write().expect("metrics hub lock") = Some(m);
        hub.epoch.store(epoch, Ordering::Release);
    }
}

fn collect_incidents(incidents: &Mutex<Vec<IncidentBundle>>, engine: &mut ServerEngine) {
    let fresh = engine.take_incidents();
    if !fresh.is_empty() {
        incidents.lock().expect("incident registry lock").extend(fresh);
    }
}

fn query_loop(rx: Arc<Mutex<mpsc::Receiver<QueryMsg>>>, published: Published) {
    loop {
        // Hold the receiver lock only while waiting for the next
        // message, never while answering it.
        let msg = match rx.lock().expect("query queue lock").recv() {
            Ok(m) => m,
            Err(_) => return,
        };
        let QueryMsg::Handle { req, reply } = msg;
        let view = published.read().expect("published lock").clone();
        let resp = match (req, view) {
            (_, None) => Response::Error { reason: "session already drained".into() },
            (Request::Quote { app, dataset_bytes, deadline_slack }, Some((snap, _))) => {
                Response::Quoted { quote: snap.quote(&app, dataset_bytes, deadline_slack) }
            }
            (Request::Stats, Some((_, stats))) => Response::Stats { stats },
            (other, Some(_)) => {
                Response::Error { reason: format!("query pool cannot serve {other:?}") }
            }
        };
        let _ = reply.send((resp, Vec::new()));
    }
}

fn session_loop(
    conn: WireConn,
    core_tx: mpsc::Sender<CoreMsg>,
    query_tx: mpsc::Sender<QueryMsg>,
    hub: Arc<MetricsHub>,
) {
    let mut dec = FrameDecoder::new();
    let mut event_seq: u32 = 0;
    // Epoch of the last metrics snapshot this session sent, once
    // subscribed. The steady-state cost of a subscription is the one
    // relaxed atomic load in `maybe_push_metrics` per response.
    let mut sub: Option<u64> = None;
    loop {
        let Some(chunk) = conn.recv() else {
            // Client closed. A clean close lands between frames; a
            // mid-frame close is corruption the client should know
            // about, but there is nobody left to tell.
            return;
        };
        dec.push(&chunk);
        loop {
            let frame = match dec.next_frame() {
                Ok(Some(f)) => f,
                Ok(None) => break,
                Err(e) => {
                    // Corrupt stream: report the typed error once,
                    // cut a flight-recorder incident, then hang up.
                    // No resynchronisation guesses.
                    let _ = core_tx.send(CoreMsg::Poisoned { error: e.to_string() });
                    send_wire_error(&conn, &e);
                    return;
                }
            };
            let ord = dec.frames() - 1;
            if frame.kind == FrameKind::SubscribeMetrics {
                let wanted = match decode_subscribe(&frame, ord) {
                    Ok(s) => s,
                    Err(e) => {
                        let _ = core_tx.send(CoreMsg::Poisoned { error: e.to_string() });
                        send_wire_error(&conn, &e);
                        return;
                    }
                };
                // Ack with the current snapshot (served straight from
                // the hub — the core thread is never involved), then
                // stream changes as they are published.
                let view = hub.latest.read().expect("metrics hub lock").clone();
                match view {
                    Some(m) => {
                        sub = Some(m.epoch.max(wanted.min_epoch));
                        let payload = encode_metrics(&m);
                        conn.send(&encode_frame(FrameKind::MetricsSnapshot, frame.seq, &payload));
                    }
                    None => {
                        let resp = Response::Error { reason: "telemetry not yet published".into() };
                        conn.send(&encode_frame(
                            FrameKind::Response,
                            frame.seq,
                            &encode_response(&resp),
                        ));
                    }
                }
                continue;
            }
            let req = match decode_request(&frame, ord) {
                Ok(r) => r,
                Err(e) => {
                    let _ = core_tx.send(CoreMsg::Poisoned { error: e.to_string() });
                    send_wire_error(&conn, &e);
                    return;
                }
            };
            let (reply_tx, reply_rx) = mpsc::channel();
            let routed = match &req {
                // Reads go to the snapshot pool; state changes to the
                // core thread.
                Request::Quote { .. } | Request::Stats => {
                    query_tx.send(QueryMsg::Handle { req, reply: reply_tx }).is_ok()
                }
                Request::Submit { .. } | Request::Drain => {
                    core_tx.send(CoreMsg::Handle { req, reply: reply_tx }).is_ok()
                }
            };
            let Ok((resp, events)) = (if routed { reply_rx.recv() } else { Err(mpsc::RecvError) })
            else {
                send_wire_error(&conn, &WireError::Poisoned);
                return;
            };
            if !events.is_empty() {
                let batch = EventBatch { events };
                conn.send(&encode_frame(FrameKind::Event, event_seq, &encode_events(&batch)));
                event_seq += 1;
            }
            conn.send(&encode_frame(FrameKind::Response, frame.seq, &encode_response(&resp)));
            maybe_push_metrics(&conn, &hub, &mut sub, &mut event_seq);
        }
    }
}

/// If this session is subscribed and the hub's epoch has moved past
/// what it last saw, push the latest snapshot. The no-change path is
/// one atomic load — no locks, no allocation.
fn maybe_push_metrics(
    conn: &WireConn,
    hub: &MetricsHub,
    sub: &mut Option<u64>,
    event_seq: &mut u32,
) {
    let Some(last) = *sub else { return };
    let epoch = hub.epoch.load(Ordering::Acquire);
    if epoch == EPOCH_NONE || epoch <= last {
        return;
    }
    let view = hub.latest.read().expect("metrics hub lock").clone();
    if let Some(m) = view {
        if m.epoch > last {
            *sub = Some(m.epoch);
            conn.send(&encode_frame(FrameKind::MetricsSnapshot, *event_seq, &encode_metrics(&m)));
            *event_seq += 1;
        }
    }
}

/// Best-effort final word on a broken session: a response frame with
/// the sentinel sequence number carrying the typed error, so the
/// client sees *why* before end-of-stream.
fn send_wire_error(conn: &WireConn, err: &WireError) {
    let resp = Response::Error { reason: err.to_string() };
    conn.send(&encode_frame(FrameKind::Response, u32::MAX, &encode_response(&resp)));
}
