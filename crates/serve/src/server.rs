//! The threaded server: one core thread owning the decision state, a
//! thread-per-core query pool answering predictions from a lock-free
//! snapshot, and one session thread per connection speaking the wire
//! protocol over an in-process byte pipe.
//!
//! Threading model:
//!
//! * **Core thread** — the only thread that ever touches the
//!   [`SchedCore`] (whose trace counters are deliberately not `Send`,
//!   so the compiler enforces this). It serialises submissions and the
//!   final drain, and republishes a fresh [`SchedSnapshot`] after
//!   every state change — *before* acknowledging the request, so a
//!   client that has its submit response is guaranteed the next quote
//!   reflects that submission.
//! * **Query pool** — `available_parallelism` workers. Quotes and
//!   stats are answered purely from the published snapshot (every
//!   [`SchedSnapshot`] method takes `&self`), so arbitrarily many
//!   predictions run concurrently without ever blocking the core.
//! * **Session threads** — one per [`connect`](Server::connect). They
//!   decode frames, route submissions to the core and queries to the
//!   pool, and stream event frames back ahead of each response.
//!
//! The transport is an in-process pipe rather than a socket: the wire
//! bytes, framing, and thread handoffs are all real, but tests stay
//! hermetic and the protocol layer stays reusable over any transport
//! that can move bytes.

use crate::engine::ServerEngine;
use crate::frame::{encode_frame, FrameDecoder, FrameKind, WireError};
use crate::msg::{decode_request, encode_events, encode_response, EventBatch, Request, Response};
use fg_sched::{CoreEvent, CoreStats, SchedSnapshot, Scheduler};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::{self, JoinHandle};

/// One direction of a byte stream: a blocking, closeable in-memory
/// pipe (unbounded — both peers are in-process and well-behaved).
#[derive(Clone, Debug)]
struct Pipe {
    state: Arc<(Mutex<PipeState>, Condvar)>,
}

#[derive(Debug, Default)]
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

impl Pipe {
    fn new() -> Pipe {
        Pipe { state: Arc::new((Mutex::new(PipeState::default()), Condvar::new())) }
    }

    /// Append bytes; silently dropped once the pipe is closed (the
    /// reader is gone, there is nobody left to care).
    fn write(&self, bytes: &[u8]) {
        let (lock, cv) = &*self.state;
        let mut st = lock.lock().expect("pipe lock");
        if !st.closed {
            st.buf.extend(bytes);
            cv.notify_all();
        }
    }

    /// Block until bytes are available; `None` at end-of-stream.
    fn read(&self) -> Option<Vec<u8>> {
        let (lock, cv) = &*self.state;
        let mut st = lock.lock().expect("pipe lock");
        loop {
            if !st.buf.is_empty() {
                return Some(st.buf.drain(..).collect());
            }
            if st.closed {
                return None;
            }
            st = cv.wait(st).expect("pipe lock");
        }
    }

    fn close(&self) {
        let (lock, cv) = &*self.state;
        lock.lock().expect("pipe lock").closed = true;
        cv.notify_all();
    }
}

/// One end of a duplex byte connection. Dropping an end closes its
/// outgoing direction, which the peer observes as end-of-stream.
#[derive(Debug)]
pub struct WireConn {
    tx: Pipe,
    rx: Pipe,
}

impl WireConn {
    /// A connected pair: bytes sent on one end arrive on the other.
    pub fn pair() -> (WireConn, WireConn) {
        let (a, b) = (Pipe::new(), Pipe::new());
        (WireConn { tx: a.clone(), rx: b.clone() }, WireConn { tx: b, rx: a })
    }

    /// Send bytes to the peer.
    pub fn send(&self, bytes: &[u8]) {
        self.tx.write(bytes);
    }

    /// Block for the next chunk from the peer; `None` once the peer
    /// has closed and the stream is drained.
    pub fn recv(&self) -> Option<Vec<u8>> {
        self.rx.read()
    }
}

impl Drop for WireConn {
    fn drop(&mut self) {
        self.tx.close();
    }
}

/// What the core thread has published for the query pool: the
/// snapshot-and-counters pair from after the most recent state change,
/// `None` once the session is drained.
type Published = Arc<RwLock<Option<(SchedSnapshot, CoreStats)>>>;

enum CoreMsg {
    Handle { req: Request, reply: mpsc::Sender<(Response, Vec<CoreEvent>)> },
}

enum QueryMsg {
    Handle { req: Request, reply: mpsc::Sender<(Response, Vec<CoreEvent>)> },
}

/// The running service. Dropping (or [`shutdown`](Server::shutdown))
/// stops the core thread and the query pool; open sessions end when
/// their client disconnects.
#[derive(Debug)]
pub struct Server {
    core_tx: mpsc::Sender<CoreMsg>,
    query_tx: mpsc::Sender<QueryMsg>,
    workers: usize,
    threads: Vec<JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Start the service for one scheduling session over `cfg`'s grid
    /// and policy.
    pub fn start(cfg: Scheduler) -> Server {
        let published: Published = Arc::new(RwLock::new(None));
        let (core_tx, core_rx) = mpsc::channel::<CoreMsg>();
        let (query_tx, query_rx) = mpsc::channel::<QueryMsg>();
        let mut threads = Vec::new();

        let pub_core = Arc::clone(&published);
        threads.push(
            thread::Builder::new()
                .name("fg-serve-core".into())
                .spawn(move || core_loop(cfg, core_rx, pub_core))
                .expect("spawn core thread"),
        );

        let workers = thread::available_parallelism().map_or(2, usize::from);
        let query_rx = Arc::new(Mutex::new(query_rx));
        for i in 0..workers {
            let rx = Arc::clone(&query_rx);
            let published = Arc::clone(&published);
            threads.push(
                thread::Builder::new()
                    .name(format!("fg-serve-query-{i}"))
                    .spawn(move || query_loop(rx, published))
                    .expect("spawn query worker"),
            );
        }

        Server { core_tx, query_tx, workers, threads, sessions: Arc::default() }
    }

    /// Query-pool width (one worker per available core).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Open a connection: spawns a session thread and returns the
    /// client end of the wire.
    pub fn connect(&self) -> WireConn {
        let (client_end, server_end) = WireConn::pair();
        let core_tx = self.core_tx.clone();
        let query_tx = self.query_tx.clone();
        let handle = thread::Builder::new()
            .name("fg-serve-session".into())
            .spawn(move || session_loop(server_end, core_tx, query_tx))
            .expect("spawn session thread");
        self.sessions.lock().expect("session registry lock").push(handle);
        client_end
    }

    /// Stop the service and join every thread. Sessions whose clients
    /// are still connected are waited on, so drop clients first.
    pub fn shutdown(self) {
        let Server { core_tx, query_tx, threads, sessions, .. } = self;
        // Sessions hold channel clones; the core and pool loops end
        // once every sender is gone, so wait for the sessions first.
        drop(core_tx);
        drop(query_tx);
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *sessions.lock().expect("session registry lock"));
        for h in handles {
            let _ = h.join();
        }
        for h in threads {
            let _ = h.join();
        }
    }
}

fn core_loop(cfg: Scheduler, rx: mpsc::Receiver<CoreMsg>, published: Published) {
    // The decision core is built here, on the core thread: it is not
    // `Send`, only its configuration is.
    let mut engine = ServerEngine::new(cfg);
    publish(&published, &engine);
    while let Ok(CoreMsg::Handle { req, reply }) = rx.recv() {
        let out = engine.handle(req);
        // Publish before acknowledging: once a client sees its
        // response, every later quote reflects that submission.
        publish(&published, &engine);
        let _ = reply.send(out);
    }
}

fn publish(published: &Published, engine: &ServerEngine) {
    let fresh = engine.snapshot().zip(engine.stats());
    *published.write().expect("published lock") = fresh;
}

fn query_loop(rx: Arc<Mutex<mpsc::Receiver<QueryMsg>>>, published: Published) {
    loop {
        // Hold the receiver lock only while waiting for the next
        // message, never while answering it.
        let msg = match rx.lock().expect("query queue lock").recv() {
            Ok(m) => m,
            Err(_) => return,
        };
        let QueryMsg::Handle { req, reply } = msg;
        let view = published.read().expect("published lock").clone();
        let resp = match (req, view) {
            (_, None) => Response::Error { reason: "session already drained".into() },
            (Request::Quote { app, dataset_bytes, deadline_slack }, Some((snap, _))) => {
                Response::Quoted { quote: snap.quote(&app, dataset_bytes, deadline_slack) }
            }
            (Request::Stats, Some((_, stats))) => Response::Stats { stats },
            (other, Some(_)) => {
                Response::Error { reason: format!("query pool cannot serve {other:?}") }
            }
        };
        let _ = reply.send((resp, Vec::new()));
    }
}

fn session_loop(conn: WireConn, core_tx: mpsc::Sender<CoreMsg>, query_tx: mpsc::Sender<QueryMsg>) {
    let mut dec = FrameDecoder::new();
    let mut event_seq: u32 = 0;
    loop {
        let Some(chunk) = conn.recv() else {
            // Client closed. A clean close lands between frames; a
            // mid-frame close is corruption the client should know
            // about, but there is nobody left to tell.
            return;
        };
        dec.push(&chunk);
        loop {
            let frame = match dec.next_frame() {
                Ok(Some(f)) => f,
                Ok(None) => break,
                Err(e) => {
                    // Corrupt stream: report the typed error once,
                    // then hang up. No resynchronisation guesses.
                    send_wire_error(&conn, &e);
                    return;
                }
            };
            let ord = dec.frames() - 1;
            let req = match decode_request(&frame, ord) {
                Ok(r) => r,
                Err(e) => {
                    send_wire_error(&conn, &e);
                    return;
                }
            };
            let (reply_tx, reply_rx) = mpsc::channel();
            let routed = match &req {
                // Reads go to the snapshot pool; state changes to the
                // core thread.
                Request::Quote { .. } | Request::Stats => {
                    query_tx.send(QueryMsg::Handle { req, reply: reply_tx }).is_ok()
                }
                Request::Submit { .. } | Request::Drain => {
                    core_tx.send(CoreMsg::Handle { req, reply: reply_tx }).is_ok()
                }
            };
            let Ok((resp, events)) = (if routed { reply_rx.recv() } else { Err(mpsc::RecvError) })
            else {
                send_wire_error(&conn, &WireError::Poisoned);
                return;
            };
            if !events.is_empty() {
                let batch = EventBatch { events };
                conn.send(&encode_frame(FrameKind::Event, event_seq, &encode_events(&batch)));
                event_seq += 1;
            }
            conn.send(&encode_frame(FrameKind::Response, frame.seq, &encode_response(&resp)));
        }
    }
}

/// Best-effort final word on a broken session: a response frame with
/// the sentinel sequence number carrying the typed error, so the
/// client sees *why* before end-of-stream.
fn send_wire_error(conn: &WireConn, err: &WireError) {
    let resp = Response::Error { reason: err.to_string() };
    conn.send(&encode_frame(FrameKind::Response, u32::MAX, &encode_response(&resp)));
}
