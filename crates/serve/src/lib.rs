//! # fg-serve — the prediction-and-placement service
//!
//! The scheduler's decision core ([`fg_sched::SchedCore`]) answers
//! three questions: *may this job enter?* (admission), *where should
//! it run?* (placement), and *when will it finish?* (prediction). This
//! crate puts those answers behind a long-running multi-tenant
//! service:
//!
//! * [`frame`] — the versioned, length-prefixed, checksummed wire
//!   format, with an incremental decoder that reports corruption as a
//!   typed error naming the exact byte offset and frame ordinal, then
//!   poisons itself instead of resynchronising on a guess.
//! * [`msg`] — the typed request/response/event vocabulary, carried as
//!   canonical JSON payloads so encode→frame→decode is an identity.
//! * [`engine`] — the sans-IO session state machine over the decision
//!   core; tests drive it directly, the server drives it on a thread.
//! * [`server`] — the threaded service: one core thread (the decision
//!   core is intentionally not `Send`), a thread-per-core query pool
//!   answering quotes and stats from a lock-free
//!   [`fg_sched::SchedSnapshot`], and a session thread per connection
//!   streaming scheduling events ahead of each response.
//! * [`recorder`] — the flight recorder: a bounded ring of recent
//!   decision events that cuts a self-contained JSONL
//!   [`recorder::IncidentBundle`] (reason, stats, last-N events,
//!   accuracy-ledger tail, standing alarms) when a drift alarm fires,
//!   a tenant SLO breaches, or a session's decoder is poisoned.
//! * [`client`] — the blocking client and the [`client::replay`]
//!   harness that pushes a whole trace-shaped workload through the
//!   wire and returns everything needed to prove the served schedule
//!   **bit-identical** to driving [`fg_sched::Scheduler`] directly
//!   (`tests/serve_differential.rs` at the workspace root pins this
//!   across every workload shape).
//!
//! Determinism: submissions are totally ordered by the single core
//! thread, the incremental event loop parks *before* each scheduling
//! pass so equal-arrival submissions join the same arrival batch the
//! batch loop would form, and queries never touch the core — so the
//! wire protocol adds concurrency without adding nondeterminism.

#![warn(missing_docs)]

pub mod client;
pub mod engine;
pub mod frame;
pub mod msg;
pub mod recorder;
pub mod server;

pub use client::{replay, ClientError, ServeClient, ServedRun};
pub use engine::ServerEngine;
pub use frame::{Frame, FrameDecoder, FrameKind, WireError};
pub use msg::{DrainedRun, EventBatch, Request, Response, ServeMetrics, SubscribeMetrics};
pub use recorder::{
    FlightRecorder, IncidentBundle, IncidentReason, RecordedEvent, RecorderConfig, INCIDENT_VERSION,
};
pub use server::{Server, WireConn};
