//! The blocking client and the deterministic replay harness.
//!
//! The client speaks the full wire protocol — frames out, frames back
//! through its own poisoning [`FrameDecoder`] — so a round trip in a
//! test exercises exactly the bytes a remote client would see.
//! [`replay`] drives a whole workload through a connection and hands
//! back everything needed to prove the served run bit-identical to
//! driving [`fg_sched::Scheduler`] directly.

use crate::frame::{encode_frame, FrameDecoder, FrameKind, WireError};
use crate::msg::{
    decode_events, decode_metrics, decode_response, encode_request, encode_subscribe, DrainedRun,
    Request, Response, ServeMetrics, SubscribeMetrics,
};
use crate::server::{Server, WireConn};
use fg_sched::{CoreEvent, CoreStats, JobSpec, PredictionQuote, SubmitOutcome};
use std::fmt;

/// Why a client call failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The byte stream from the server violated the framing layer.
    Wire(WireError),
    /// The server hung up before answering.
    Closed,
    /// The server answered, but with an error or a response of the
    /// wrong shape for the request.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Server(reason) => write!(f, "server error: {reason}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Wire(e)
    }
}

/// A blocking protocol client over one connection. Streamed event
/// frames are collected as they arrive; drain them with
/// [`take_events`](ServeClient::take_events). After
/// [`subscribe_metrics`](ServeClient::subscribe_metrics), streamed
/// telemetry snapshots are collected the same way and drained with
/// [`take_metrics`](ServeClient::take_metrics).
#[derive(Debug)]
pub struct ServeClient {
    conn: WireConn,
    dec: FrameDecoder,
    next_seq: u32,
    events: Vec<CoreEvent>,
    metrics: Vec<ServeMetrics>,
}

impl ServeClient {
    /// Open a session against a running server.
    pub fn connect(server: &Server) -> ServeClient {
        ServeClient {
            conn: server.connect(),
            dec: FrameDecoder::new(),
            next_seq: 0,
            events: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Scheduling events streamed so far, in decision order.
    pub fn take_events(&mut self) -> Vec<CoreEvent> {
        std::mem::take(&mut self.events)
    }

    /// Telemetry snapshots streamed since the last call, in epoch
    /// order (empty without a subscription).
    pub fn take_metrics(&mut self) -> Vec<ServeMetrics> {
        std::mem::take(&mut self.metrics)
    }

    /// One request/response round trip, absorbing any event frames
    /// streamed ahead of the response.
    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.conn.send(&encode_frame(FrameKind::Request, seq, &encode_request(req)));
        loop {
            while let Some(frame) = self.dec.next_frame()? {
                let ord = self.dec.frames() - 1;
                match frame.kind {
                    FrameKind::Event => {
                        self.events.extend(decode_events(&frame, ord)?.events);
                    }
                    FrameKind::Response => {
                        let resp = decode_response(&frame, ord)?;
                        if let Response::Error { reason } = resp {
                            return Err(ClientError::Server(reason));
                        }
                        if frame.seq != seq {
                            return Err(ClientError::Server(format!(
                                "response seq {} does not match request seq {seq}",
                                frame.seq
                            )));
                        }
                        return Ok(resp);
                    }
                    FrameKind::MetricsSnapshot => {
                        self.metrics.push(decode_metrics(&frame, ord)?);
                    }
                    FrameKind::Request | FrameKind::SubscribeMetrics => {
                        return Err(ClientError::Server(format!(
                            "server sent a client-only frame kind {:?} (seq {})",
                            frame.kind, frame.seq
                        )));
                    }
                }
            }
            let Some(chunk) = self.conn.recv() else {
                return Err(ClientError::Closed);
            };
            self.dec.push(&chunk);
        }
    }

    /// Subscribe this session to streamed telemetry. The server acks
    /// with the latest published snapshot (returned here) and from
    /// then on pushes a [`ServeMetrics`] frame after any response it
    /// sends while the telemetry epoch has advanced — drain those with
    /// [`take_metrics`](ServeClient::take_metrics). Snapshots with
    /// epoch at or below `min_epoch` are suppressed.
    pub fn subscribe_metrics(&mut self, min_epoch: u64) -> Result<ServeMetrics, ClientError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let payload = encode_subscribe(&SubscribeMetrics { min_epoch });
        self.conn.send(&encode_frame(FrameKind::SubscribeMetrics, seq, &payload));
        loop {
            while let Some(frame) = self.dec.next_frame()? {
                let ord = self.dec.frames() - 1;
                match frame.kind {
                    FrameKind::Event => {
                        self.events.extend(decode_events(&frame, ord)?.events);
                    }
                    FrameKind::MetricsSnapshot => {
                        let m = decode_metrics(&frame, ord)?;
                        if frame.seq == seq {
                            return Ok(m);
                        }
                        self.metrics.push(m);
                    }
                    FrameKind::Response => {
                        let resp = decode_response(&frame, ord)?;
                        if let Response::Error { reason } = resp {
                            return Err(ClientError::Server(reason));
                        }
                        return Err(ClientError::Server(format!(
                            "unexpected response {resp:?} to a metrics subscription"
                        )));
                    }
                    FrameKind::Request | FrameKind::SubscribeMetrics => {
                        return Err(ClientError::Server(format!(
                            "server sent a client-only frame kind {:?} (seq {})",
                            frame.kind, frame.seq
                        )));
                    }
                }
            }
            let Some(chunk) = self.conn.recv() else {
                return Err(ClientError::Closed);
            };
            self.dec.push(&chunk);
        }
    }

    /// Block until the next pushed telemetry snapshot arrives (event
    /// frames are absorbed along the way). Use after a drain, whose
    /// final plane is pushed *behind* the drain response: one call
    /// collects it deterministically.
    pub fn recv_metrics(&mut self) -> Result<ServeMetrics, ClientError> {
        loop {
            while let Some(frame) = self.dec.next_frame()? {
                let ord = self.dec.frames() - 1;
                match frame.kind {
                    FrameKind::Event => {
                        self.events.extend(decode_events(&frame, ord)?.events);
                    }
                    FrameKind::MetricsSnapshot => {
                        return decode_metrics(&frame, ord).map_err(ClientError::from);
                    }
                    other => {
                        return Err(ClientError::Server(format!(
                            "expected a metrics push, got {other:?} (seq {})",
                            frame.seq
                        )));
                    }
                }
            }
            let Some(chunk) = self.conn.recv() else {
                return Err(ClientError::Closed);
            };
            self.dec.push(&chunk);
        }
    }

    /// Submit a job; arrivals must be non-decreasing across the
    /// session, exactly as [`fg_sched::SchedCore::submit`] requires.
    pub fn submit(&mut self, job: JobSpec) -> Result<SubmitOutcome, ClientError> {
        match self.call(&Request::Submit { job })? {
            Response::Submitted { outcome } => Ok(outcome),
            Response::SubmitFailed { reason } => Err(ClientError::Server(reason)),
            other => Err(ClientError::Server(format!("unexpected response {other:?}"))),
        }
    }

    /// Ask for a prediction quote without submitting.
    pub fn quote(
        &mut self,
        app: &str,
        dataset_bytes: u64,
        deadline_slack: f64,
    ) -> Result<Option<PredictionQuote>, ClientError> {
        let req = Request::Quote { app: app.to_string(), dataset_bytes, deadline_slack };
        match self.call(&req)? {
            Response::Quoted { quote } => Ok(quote),
            other => Err(ClientError::Server(format!("unexpected response {other:?}"))),
        }
    }

    /// Live counters.
    pub fn stats(&mut self) -> Result<CoreStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats { stats } => Ok(stats),
            other => Err(ClientError::Server(format!("unexpected response {other:?}"))),
        }
    }

    /// Drain the session: run the scheduler to completion and fetch
    /// the flattened result. Ends the session's scheduling state.
    pub fn drain(&mut self) -> Result<DrainedRun, ClientError> {
        match self.call(&Request::Drain)? {
            Response::Drained { result } => Ok(result),
            other => Err(ClientError::Server(format!("unexpected response {other:?}"))),
        }
    }
}

/// Everything a replayed session produced, for differential checks
/// against a direct [`fg_sched::Scheduler::run`].
#[derive(Debug)]
pub struct ServedRun {
    /// Per-submission outcomes, as acknowledged over the wire.
    pub submits: Vec<SubmitOutcome>,
    /// The drained run (outcomes, trace JSONL, makespan, violations).
    pub drained: DrainedRun,
    /// Every scheduling event streamed during the session.
    pub events: Vec<CoreEvent>,
}

/// Replay a workload through the wire protocol: submit every job in
/// order, then drain. `quote_every` sprinkles a prediction query (for
/// the first job's app and size, slack 2) between submissions every so
/// many jobs — queries are answered from snapshots and must never
/// perturb the schedule, which the differential test relies on.
pub fn replay(
    server: &Server,
    jobs: &[JobSpec],
    quote_every: Option<usize>,
) -> Result<ServedRun, ClientError> {
    let mut client = ServeClient::connect(server);
    let mut submits = Vec::with_capacity(jobs.len());
    for (i, job) in jobs.iter().enumerate() {
        if let Some(k) = quote_every {
            if k > 0 && i % k == 0 {
                let probe = &jobs[0];
                client.quote(&probe.app, probe.dataset_bytes, 2.0)?;
            }
        }
        submits.push(client.submit(job.clone())?);
    }
    let drained = client.drain()?;
    let events = client.take_events();
    Ok(ServedRun { submits, drained, events })
}
