//! The wire framing layer: a fixed 16-byte little-endian header in
//! front of every payload, and an incremental decoder that survives
//! arbitrary chunk boundaries but never survives corruption silently.
//!
//! ```text
//! offset  size  field
//! 0       2     magic "FG"
//! 2       1     protocol version (1)
//! 3       1     frame kind (1 = request, 2 = response, 3 = event,
//!               4 = subscribe-metrics, 5 = metrics snapshot)
//! 4       4     sequence number, u32 LE
//! 8       4     payload length,  u32 LE
//! 12      4     FNV-1a checksum over [kind, seq LE, payload], u32 LE
//! 16      len   payload (JSON)
//! ```
//!
//! The checksum covers the kind and sequence number as well as the
//! payload, so a flipped bit anywhere past the length field is caught
//! — and a corrupted *length* either breaks the checksum or walks the
//! decoder into a bad magic at the next header. Every error names the
//! absolute byte offset of the frame it was detected in and that
//! frame's ordinal, mirroring the line-numbered errors of
//! [`fg_sched::ReplayError`]; after the first error the decoder is
//! poisoned and refuses further frames rather than resynchronising on
//! a guess.

use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;

/// First two header bytes of every frame.
pub const MAGIC: [u8; 2] = *b"FG";
/// The only protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Bytes in the fixed header.
pub const HEADER_LEN: usize = 16;
/// Hard cap on a single frame's payload; larger lengths are treated
/// as corruption, not as a request for a 4 GiB allocation.
pub const MAX_PAYLOAD: u32 = 16 << 20;

/// What a frame carries, from the header's kind byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client-to-server request.
    Request,
    /// Server-to-client reply, echoing the request's sequence number.
    Response,
    /// Server-to-client streamed event, on its own sequence counter.
    Event,
    /// Client-to-server metrics subscription, acknowledged with a
    /// [`MetricsSnapshot`](FrameKind::MetricsSnapshot) echoing its
    /// sequence number.
    SubscribeMetrics,
    /// Server-to-client telemetry snapshot. The subscription ack
    /// echoes the subscribe frame's sequence number; streamed
    /// snapshots ride the event sequence counter.
    MetricsSnapshot,
}

impl FrameKind {
    /// The header byte for this kind.
    pub fn as_byte(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Response => 2,
            FrameKind::Event => 3,
            FrameKind::SubscribeMetrics => 4,
            FrameKind::MetricsSnapshot => 5,
        }
    }

    /// Parse a header byte; `None` for anything unassigned.
    pub fn from_byte(b: u8) -> Option<FrameKind> {
        match b {
            1 => Some(FrameKind::Request),
            2 => Some(FrameKind::Response),
            3 => Some(FrameKind::Event),
            4 => Some(FrameKind::SubscribeMetrics),
            5 => Some(FrameKind::MetricsSnapshot),
            _ => None,
        }
    }
}

/// One decoded frame: kind, sequence number, and the raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the payload is.
    pub kind: FrameKind,
    /// Sequence number from the header.
    pub seq: u32,
    /// The payload bytes (a JSON document at the message layer).
    pub payload: Bytes,
}

/// A framing violation. Every variant that detects corruption names
/// the absolute byte offset where the offending frame *started* and
/// the 0-based ordinal of that frame in the stream, so a recorded
/// session can be opened in a hex editor at the exact spot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The two magic bytes were wrong — the stream is desynchronised
    /// or talking a different protocol.
    BadMagic {
        /// Absolute byte offset of the frame start.
        offset: u64,
        /// 0-based frame ordinal.
        frame: u64,
        /// The two bytes found instead of `"FG"`.
        found: [u8; 2],
    },
    /// The version byte names a protocol this build does not speak.
    BadVersion {
        /// Absolute byte offset of the frame start.
        offset: u64,
        /// 0-based frame ordinal.
        frame: u64,
        /// The version byte found.
        found: u8,
    },
    /// The kind byte is not an assigned frame kind.
    BadKind {
        /// Absolute byte offset of the frame start.
        offset: u64,
        /// 0-based frame ordinal.
        frame: u64,
        /// The kind byte found.
        found: u8,
    },
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// Absolute byte offset of the frame start.
        offset: u64,
        /// 0-based frame ordinal.
        frame: u64,
        /// The declared length.
        len: u32,
        /// The cap it exceeded.
        max: u32,
    },
    /// The checksum over kind, sequence number, and payload does not
    /// match the header.
    BadChecksum {
        /// Absolute byte offset of the frame start.
        offset: u64,
        /// 0-based frame ordinal.
        frame: u64,
        /// Checksum the header declared.
        declared: u32,
        /// Checksum computed from the bytes.
        computed: u32,
    },
    /// The stream ended mid-frame (only reported by
    /// [`FrameDecoder::finish`]).
    Truncated {
        /// Absolute byte offset of the unfinished frame's start.
        offset: u64,
        /// 0-based frame ordinal.
        frame: u64,
        /// Bytes the frame needed (header plus declared payload).
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// A structurally valid frame whose payload failed to parse at the
    /// message layer.
    BadPayload {
        /// 0-based frame ordinal.
        frame: u64,
        /// Sequence number from the frame header.
        seq: u32,
        /// The message-layer parse failure.
        reason: String,
    },
    /// A frame arrived after the decoder was poisoned by an earlier
    /// error.
    Poisoned,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic { offset, frame, found } => write!(
                f,
                "frame {frame} at byte {offset}: bad magic {found:02x?} (expected \"FG\")"
            ),
            WireError::BadVersion { offset, frame, found } => write!(
                f,
                "frame {frame} at byte {offset}: unsupported protocol version {found} \
                 (this build speaks {VERSION})"
            ),
            WireError::BadKind { offset, frame, found } => {
                write!(f, "frame {frame} at byte {offset}: unassigned frame kind {found}")
            }
            WireError::Oversized { offset, frame, len, max } => write!(
                f,
                "frame {frame} at byte {offset}: declared payload {len} bytes exceeds cap {max}"
            ),
            WireError::BadChecksum { offset, frame, declared, computed } => write!(
                f,
                "frame {frame} at byte {offset}: checksum mismatch \
                 (header {declared:#010x}, computed {computed:#010x})"
            ),
            WireError::Truncated { offset, frame, expected, got } => write!(
                f,
                "frame {frame} at byte {offset}: stream truncated mid-frame \
                 ({got} of {expected} bytes)"
            ),
            WireError::BadPayload { frame, seq, reason } => {
                write!(f, "frame {frame} (seq {seq}): payload rejected: {reason}")
            }
            WireError::Poisoned => {
                write!(f, "decoder poisoned by an earlier framing error")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a over the checksummed region: kind byte, the four
/// little-endian sequence bytes, then the payload.
pub fn checksum(kind: u8, seq: u32, payload: &[u8]) -> u32 {
    const OFFSET: u32 = 0x811c_9dc5;
    const PRIME: u32 = 0x0100_0193;
    let mut h = OFFSET;
    let mut eat = |b: u8| h = (h ^ u32::from(b)).wrapping_mul(PRIME);
    eat(kind);
    for b in seq.to_le_bytes() {
        eat(b);
    }
    for &b in payload {
        eat(b);
    }
    h
}

/// Frame a payload: header plus bytes, ready to write to the wire.
pub fn encode_frame(kind: FrameKind, seq: u32, payload: &[u8]) -> Bytes {
    assert!(
        payload.len() <= MAX_PAYLOAD as usize,
        "payload of {} bytes exceeds MAX_PAYLOAD ({MAX_PAYLOAD})",
        payload.len()
    );
    let mut buf = BytesMut::with_capacity(HEADER_LEN + payload.len());
    buf.put_slice(&MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(kind.as_byte());
    buf.put_u32_le(seq);
    buf.put_u32_le(payload.len() as u32);
    buf.put_u32_le(checksum(kind.as_byte(), seq, payload));
    buf.put_slice(payload);
    buf.freeze()
}

/// Incremental frame decoder. Feed it arbitrary byte chunks with
/// [`push`](FrameDecoder::push), pull complete frames with
/// [`next_frame`](FrameDecoder::next_frame), and call
/// [`finish`](FrameDecoder::finish) at end-of-stream to catch a
/// trailing partial frame. The first error poisons the decoder: a
/// stream that has desynchronised once cannot be trusted to
/// resynchronise, so every later call returns the original error.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Absolute stream offset of `buf[0]`.
    base: u64,
    /// Frames successfully decoded so far (= ordinal of the next one).
    frames: u64,
    poison: Option<WireError>,
}

impl FrameDecoder {
    /// A fresh decoder at stream offset zero.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append received bytes.
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Frames decoded so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Try to decode the next complete frame. `Ok(None)` means more
    /// bytes are needed; an error is sticky.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        if let Some(e) = &self.poison {
            return Err(e.clone());
        }
        match self.try_decode() {
            Ok(v) => Ok(v),
            Err(e) => {
                self.poison = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Declare end-of-stream: errors if bytes of an unfinished frame
    /// remain buffered (or the decoder is already poisoned).
    pub fn finish(&self) -> Result<(), WireError> {
        if let Some(e) = &self.poison {
            return Err(e.clone());
        }
        if self.buf.is_empty() {
            return Ok(());
        }
        let expected = if self.buf.len() >= HEADER_LEN {
            let len = u32::from_le_bytes([self.buf[8], self.buf[9], self.buf[10], self.buf[11]]);
            HEADER_LEN + len as usize
        } else {
            HEADER_LEN
        };
        Err(WireError::Truncated {
            offset: self.base,
            frame: self.frames,
            expected,
            got: self.buf.len(),
        })
    }

    fn try_decode(&mut self) -> Result<Option<Frame>, WireError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let (offset, frame) = (self.base, self.frames);
        let h = &self.buf[..HEADER_LEN];
        if h[0..2] != MAGIC {
            return Err(WireError::BadMagic { offset, frame, found: [h[0], h[1]] });
        }
        if h[2] != VERSION {
            return Err(WireError::BadVersion { offset, frame, found: h[2] });
        }
        let Some(kind) = FrameKind::from_byte(h[3]) else {
            return Err(WireError::BadKind { offset, frame, found: h[3] });
        };
        let seq = u32::from_le_bytes([h[4], h[5], h[6], h[7]]);
        let len = u32::from_le_bytes([h[8], h[9], h[10], h[11]]);
        let declared = u32::from_le_bytes([h[12], h[13], h[14], h[15]]);
        if len > MAX_PAYLOAD {
            return Err(WireError::Oversized { offset, frame, len, max: MAX_PAYLOAD });
        }
        let total = HEADER_LEN + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = &self.buf[HEADER_LEN..total];
        let computed = checksum(kind.as_byte(), seq, payload);
        if computed != declared {
            return Err(WireError::BadChecksum { offset, frame, declared, computed });
        }
        let payload = Bytes::copy_from_slice(payload);
        self.buf.drain(..total);
        self.base += total as u64;
        self.frames += 1;
        Ok(Some(Frame { kind, seq, payload }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_all(bytes: &[u8]) -> Result<Vec<Frame>, WireError> {
        let mut d = FrameDecoder::new();
        d.push(bytes);
        let mut out = Vec::new();
        while let Some(f) = d.next_frame()? {
            out.push(f);
        }
        d.finish()?;
        Ok(out)
    }

    #[test]
    fn round_trips_across_chunk_boundaries() {
        let frames = [
            encode_frame(FrameKind::Request, 0, br#"{"kind":"Stats"}"#),
            encode_frame(FrameKind::Event, 7, b""),
            encode_frame(FrameKind::Response, 1, &[0u8; 1000]),
        ];
        let wire: Vec<u8> = frames.iter().flat_map(|f| f.iter().copied()).collect();
        // Feed one byte at a time: the decoder must never need aligned
        // chunks.
        let mut d = FrameDecoder::new();
        let mut out = Vec::new();
        for &b in &wire {
            d.push(&[b]);
            while let Some(f) = d.next_frame().unwrap() {
                out.push(f);
            }
        }
        d.finish().unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].kind, FrameKind::Request);
        assert_eq!(out[1].seq, 7);
        assert_eq!(out[2].payload.len(), 1000);
    }

    #[test]
    fn corruption_in_the_second_frame_names_its_offset_and_ordinal() {
        let a = encode_frame(FrameKind::Request, 0, b"xx");
        let b = encode_frame(FrameKind::Request, 1, b"yy");
        let mut wire: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        let second_start = a.len();
        wire[second_start + HEADER_LEN] ^= 0x01; // flip a payload bit
        let err = decode_all(&wire).unwrap_err();
        match err {
            WireError::BadChecksum { offset, frame, .. } => {
                assert_eq!(offset, second_start as u64);
                assert_eq!(frame, 1);
            }
            other => panic!("expected BadChecksum, got {other}"),
        }
    }

    #[test]
    fn the_first_error_poisons_the_decoder() {
        let mut wire = encode_frame(FrameKind::Request, 0, b"payload").to_vec();
        wire[0] = b'X';
        let mut d = FrameDecoder::new();
        d.push(&wire);
        let first = d.next_frame().unwrap_err();
        // Pushing a pristine frame afterwards must not resynchronise.
        d.push(&encode_frame(FrameKind::Request, 1, b"ok"));
        assert_eq!(d.next_frame().unwrap_err(), first);
        assert_eq!(d.finish().unwrap_err(), first);
    }

    #[test]
    fn a_truncated_tail_is_reported_at_finish() {
        let full = encode_frame(FrameKind::Response, 3, b"abcdef");
        for cut in 1..full.len() {
            let mut d = FrameDecoder::new();
            d.push(&full[..cut]);
            assert_eq!(d.next_frame().unwrap(), None, "cut at {cut}");
            match d.finish().unwrap_err() {
                WireError::Truncated { got, .. } => assert_eq!(got, cut),
                other => panic!("cut at {cut}: expected Truncated, got {other}"),
            }
        }
    }

    #[test]
    fn a_corrupt_sequence_number_breaks_the_checksum() {
        // The length field aside, every header byte after the version
        // is covered by the checksum — including seq.
        let mut wire = encode_frame(FrameKind::Event, 5, b"ev").to_vec();
        wire[4] ^= 0xff;
        match decode_all(&wire).unwrap_err() {
            WireError::BadChecksum { .. } => {}
            other => panic!("expected BadChecksum, got {other}"),
        }
    }

    #[test]
    fn an_absurd_length_is_rejected_before_allocation() {
        let mut wire = encode_frame(FrameKind::Request, 0, b"x").to_vec();
        wire[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        match decode_all(&wire).unwrap_err() {
            WireError::Oversized { len, .. } => assert_eq!(len, u32::MAX),
            other => panic!("expected Oversized, got {other}"),
        }
    }
}
