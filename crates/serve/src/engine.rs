//! The sans-IO server engine: a [`SchedCore`] with the request
//! vocabulary mapped onto it, no threads or sockets involved. The
//! threaded [`server`](crate::server) drives one of these on its core
//! thread; tests can drive one directly and get byte-identical
//! behaviour, because every decision lives here or deeper.
//!
//! The engine always arms the decision core's telemetry plane (unless
//! the caller armed it with its own configuration) and owns the
//! session's [`FlightRecorder`]: every decision event lands in the
//! recorder's ring, and a drift alarm, SLO breach, or decode poisoning
//! cuts an [`IncidentBundle`] collectable through
//! [`take_incidents`](ServerEngine::take_incidents). Telemetry is
//! strictly observational, which is what keeps a served run
//! bit-identical to a direct `Scheduler::run` — the differential tests
//! pin that property.

use crate::msg::{DrainedRun, Request, Response, ServeMetrics};
use crate::recorder::{FlightRecorder, IncidentBundle, IncidentReason, RecorderConfig};
use fg_sched::{
    CoreEvent, CoreStats, SchedCore, SchedSnapshot, Scheduler, TelemetryConfig, TelemetrySnapshot,
};

/// The state machine behind a serving session: one live decision core
/// until drained, then a terminal state that refuses further work.
pub struct ServerEngine {
    core: Option<SchedCore>,
    recorder: FlightRecorder,
    /// Telemetry epoch of the last snapshot handed out through
    /// [`metrics_if_changed`](ServerEngine::metrics_if_changed).
    published_epoch: Option<u64>,
    /// The end-of-run plane, stashed at drain so subscribers see the
    /// final state even though the core is gone.
    final_metrics: Option<ServeMetrics>,
}

impl ServerEngine {
    /// Build the engine from a scheduler configuration. The decision
    /// core is constructed here — on whichever thread the engine lives
    /// on — because the core's trace counters are deliberately not
    /// `Send`. Telemetry is armed with the default configuration
    /// unless `cfg` already carries one.
    pub fn new(cfg: Scheduler) -> ServerEngine {
        let cfg = if cfg.telemetry().is_none() {
            cfg.with_telemetry(TelemetryConfig::default())
        } else {
            cfg
        };
        ServerEngine {
            core: Some(SchedCore::new(cfg).with_event_log()),
            recorder: FlightRecorder::new(RecorderConfig::default()),
            published_epoch: None,
            final_metrics: None,
        }
    }

    /// Is the engine still accepting work?
    pub fn is_live(&self) -> bool {
        self.core.is_some()
    }

    /// A detached snapshot for the query pool, or `None` after drain.
    pub fn snapshot(&self) -> Option<SchedSnapshot> {
        self.core.as_ref().map(SchedCore::snapshot)
    }

    /// Live counters, or `None` after drain.
    pub fn stats(&self) -> Option<CoreStats> {
        self.core.as_ref().map(SchedCore::stats)
    }

    /// The telemetry plane plus counters — but only when it has
    /// changed since the last call (epoch-gated, so the publisher
    /// pays for a snapshot only on completions). The drain-time plane
    /// is handed out exactly once, after the core is gone.
    pub fn metrics_if_changed(&mut self) -> Option<ServeMetrics> {
        if let Some(core) = self.core.as_mut() {
            let epoch = core.telemetry_epoch();
            if self.published_epoch == Some(epoch) {
                return None;
            }
            let telemetry = core.telemetry_snapshot()?;
            let stats = core.stats();
            self.published_epoch = Some(epoch);
            return Some(ServeMetrics { epoch, stats, telemetry });
        }
        if let Some(m) = self.final_metrics.take() {
            if self.published_epoch != Some(m.epoch) {
                self.published_epoch = Some(m.epoch);
                return Some(m);
            }
        }
        None
    }

    /// Incident bundles cut since the last call (drift alarms, SLO
    /// breaches, decode poisonings), in trip order.
    pub fn take_incidents(&mut self) -> Vec<IncidentBundle> {
        self.recorder.take_bundles()
    }

    /// A session's frame decoder was poisoned: cut an incident bundle
    /// with whatever context is still available.
    pub fn decode_poisoned(&mut self, error: String) {
        let reason = IncidentReason::DecodePoisoned { error };
        let tail_n = self.recorder.config().ledger_tail;
        let (at, stats, tail, alarms) = match self.core.as_mut() {
            Some(core) => {
                let stats = core.stats();
                let tail = core.ledger_tail(tail_n);
                let alarms = core.telemetry_snapshot().map(|s| s.alarms).unwrap_or_default();
                (stats.now, Some(stats), tail, alarms)
            }
            None => (0.0, None, Vec::new(), Vec::new()),
        };
        self.recorder.trip(reason, at, stats, tail, alarms);
    }

    /// Feed a request's decision events through the flight recorder:
    /// ring them all, then trip a bundle per drift alarm and per newly
    /// breached tenant SLO.
    fn observe(&mut self, events: &[CoreEvent], snapshot: Option<&TelemetrySnapshot>) {
        for e in events {
            self.recorder.record(e);
        }
        let mut reasons: Vec<(IncidentReason, f64)> = events
            .iter()
            .filter_map(|e| match e {
                CoreEvent::DriftAlarm { alarm } => {
                    Some((IncidentReason::Drift { alarm: alarm.clone() }, alarm.at))
                }
                _ => None,
            })
            .collect();
        if let Some(snap) = snapshot {
            for reason in self.recorder.slo_breaches(snap) {
                reasons.push((reason, snap.now));
            }
        }
        if reasons.is_empty() {
            return;
        }
        let stats = self.stats();
        let (tail, alarms) = match (self.core.as_ref(), snapshot) {
            (Some(core), Some(snap)) => {
                (core.ledger_tail(self.recorder.config().ledger_tail), snap.alarms.clone())
            }
            _ => (Vec::new(), Vec::new()),
        };
        for (reason, at) in reasons {
            self.recorder.trip(reason, at, stats.clone(), tail.clone(), alarms.clone());
        }
    }

    /// Handle one request. Returns the response plus any scheduling
    /// events the request caused, in decision order, for streaming.
    ///
    /// [`Request::Quote`] and [`Request::Stats`] are answered here for
    /// completeness (a single-threaded driver wants one entry point),
    /// but the threaded server routes them to its snapshot-backed
    /// query pool instead — the answers are identical because
    /// [`SchedSnapshot`] is the only arithmetic either path uses.
    pub fn handle(&mut self, req: Request) -> (Response, Vec<CoreEvent>) {
        let Some(core) = self.core.as_mut() else {
            return (Response::Error { reason: "session already drained".into() }, Vec::new());
        };
        match req {
            Request::Submit { job } => match core.submit(job) {
                Ok(outcome) => {
                    let events = core.take_events();
                    let snap = core.telemetry_snapshot();
                    self.observe(&events, snap.as_ref());
                    (Response::Submitted { outcome }, events)
                }
                Err(e) => (Response::SubmitFailed { reason: e.to_string() }, Vec::new()),
            },
            Request::Quote { app, dataset_bytes, deadline_slack } => {
                let quote = core.snapshot().quote(&app, dataset_bytes, deadline_slack);
                (Response::Quoted { quote }, Vec::new())
            }
            Request::Stats => (Response::Stats { stats: core.stats() }, Vec::new()),
            Request::Drain => {
                let pre = core.stats();
                let core = self.core.take().expect("checked live above");
                let (result, events) = core.finish_with_events();
                // Stash the end-of-run plane so the publisher can push
                // one final snapshot: after the drain every admitted
                // job has completed and nothing is queued or running.
                if let Some(report) = &result.telemetry {
                    let snap = report.snapshot.clone();
                    let tail_n = self.recorder.config().ledger_tail;
                    let stats = CoreStats {
                        now: snap.now,
                        makespan: result.makespan,
                        submitted: pre.submitted,
                        admitted: pre.admitted,
                        rejected: pre.rejected,
                        completed: pre.admitted,
                        queued: 0,
                        running: 0,
                        suspended: 0,
                    };
                    for e in &events {
                        self.recorder.record(e);
                    }
                    let mut reasons: Vec<(IncidentReason, f64)> = events
                        .iter()
                        .filter_map(|e| match e {
                            CoreEvent::DriftAlarm { alarm } => {
                                Some((IncidentReason::Drift { alarm: alarm.clone() }, alarm.at))
                            }
                            _ => None,
                        })
                        .collect();
                    for reason in self.recorder.slo_breaches(&snap) {
                        reasons.push((reason, snap.now));
                    }
                    let tail = report.ledger.tail(tail_n);
                    for (reason, at) in reasons {
                        self.recorder.trip(
                            reason,
                            at,
                            Some(stats.clone()),
                            tail.clone(),
                            snap.alarms.clone(),
                        );
                    }
                    self.final_metrics =
                        Some(ServeMetrics { epoch: snap.epoch, stats, telemetry: snap });
                } else {
                    for e in &events {
                        self.recorder.record(e);
                    }
                }
                (Response::Drained { result: DrainedRun::from_result(&result) }, events)
            }
        }
    }
}
