//! The sans-IO server engine: a [`SchedCore`] with the request
//! vocabulary mapped onto it, no threads or sockets involved. The
//! threaded [`server`](crate::server) drives one of these on its core
//! thread; tests can drive one directly and get byte-identical
//! behaviour, because every decision lives here or deeper.

use crate::msg::{DrainedRun, Request, Response};
use fg_sched::{CoreEvent, CoreStats, SchedCore, SchedSnapshot, Scheduler};

/// The state machine behind a serving session: one live decision core
/// until drained, then a terminal state that refuses further work.
pub struct ServerEngine {
    core: Option<SchedCore>,
}

impl ServerEngine {
    /// Build the engine from a scheduler configuration. The decision
    /// core is constructed here — on whichever thread the engine lives
    /// on — because the core's trace counters are deliberately not
    /// `Send`.
    pub fn new(cfg: Scheduler) -> ServerEngine {
        ServerEngine { core: Some(SchedCore::new(cfg).with_event_log()) }
    }

    /// Is the engine still accepting work?
    pub fn is_live(&self) -> bool {
        self.core.is_some()
    }

    /// A detached snapshot for the query pool, or `None` after drain.
    pub fn snapshot(&self) -> Option<SchedSnapshot> {
        self.core.as_ref().map(SchedCore::snapshot)
    }

    /// Live counters, or `None` after drain.
    pub fn stats(&self) -> Option<CoreStats> {
        self.core.as_ref().map(SchedCore::stats)
    }

    /// Handle one request. Returns the response plus any scheduling
    /// events the request caused, in decision order, for streaming.
    ///
    /// [`Request::Quote`] and [`Request::Stats`] are answered here for
    /// completeness (a single-threaded driver wants one entry point),
    /// but the threaded server routes them to its snapshot-backed
    /// query pool instead — the answers are identical because
    /// [`SchedSnapshot`] is the only arithmetic either path uses.
    pub fn handle(&mut self, req: Request) -> (Response, Vec<CoreEvent>) {
        let Some(core) = self.core.as_mut() else {
            return (Response::Error { reason: "session already drained".into() }, Vec::new());
        };
        match req {
            Request::Submit { job } => match core.submit(job) {
                Ok(outcome) => {
                    let events = core.take_events();
                    (Response::Submitted { outcome }, events)
                }
                Err(e) => (Response::SubmitFailed { reason: e.to_string() }, Vec::new()),
            },
            Request::Quote { app, dataset_bytes, deadline_slack } => {
                let quote = core.snapshot().quote(&app, dataset_bytes, deadline_slack);
                (Response::Quoted { quote }, Vec::new())
            }
            Request::Stats => (Response::Stats { stats: core.stats() }, Vec::new()),
            Request::Drain => {
                let core = self.core.take().expect("checked live above");
                let (result, events) = core.finish_with_events();
                (Response::Drained { result: DrainedRun::from_result(&result) }, events)
            }
        }
    }
}
