//! Trace exporters: JSON-lines (lossless, parse-back equals the
//! in-memory trace) and Chrome `trace_event` (for chrome://tracing and
//! Perfetto).

use crate::span::{NodeRef, NodeRole, RunMeta, Span, Trace};
use serde::{Deserialize, Serialize, Value};

/// One line of the JSON-lines format, externally tagged by record type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Record {
    /// The run header.
    Meta(RunMeta),
    /// One span.
    Span(Span),
    /// The final metrics snapshot.
    Metrics(crate::metrics::MetricsSnapshot),
}

/// Serialize a trace as JSON lines: the meta record (if any), every span
/// in id order, then the metrics snapshot (if non-empty). Timestamps are
/// integer nanoseconds and floats print shortest-roundtrip, so
/// [`from_jsonl`] reconstructs the trace exactly.
pub fn to_jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    let mut push = |record: &Record| {
        out.push_str(&serde_json::to_string(record).expect("serialize trace record"));
        out.push('\n');
    };
    if let Some(meta) = &trace.meta {
        push(&Record::Meta(meta.clone()));
    }
    for span in &trace.spans {
        push(&Record::Span(span.clone()));
    }
    if trace.metrics != crate::metrics::MetricsSnapshot::default() {
        push(&Record::Metrics(trace.metrics.clone()));
    }
    out
}

/// Parse a JSON-lines trace back into memory. Inverse of [`to_jsonl`].
pub fn from_jsonl(text: &str) -> Result<Trace, String> {
    let mut trace = Trace { meta: None, spans: Vec::new(), metrics: Default::default() };
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record: Record =
            serde_json::from_str(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        match record {
            Record::Meta(meta) => trace.meta = Some(meta),
            Record::Span(span) => trace.spans.push(span),
            Record::Metrics(metrics) => trace.metrics = metrics,
        }
    }
    Ok(trace)
}

/// The `tid` a node's events appear under in the Chrome export. Role
/// blocks of 100 keep every node on its own named track.
pub fn chrome_tid(node: Option<NodeRef>) -> u64 {
    match node {
        None => 0,
        Some(NodeRef { role: NodeRole::Data, index }) => 100 + index as u64,
        Some(NodeRef { role: NodeRole::Compute, index }) => 200 + index as u64,
        Some(NodeRef { role: NodeRole::Cache, index }) => 300 + index as u64,
        Some(NodeRef { role: NodeRole::Master, .. }) => 400,
    }
}

fn chrome_track_name(node: Option<NodeRef>) -> String {
    match node {
        None => "phases".to_string(),
        Some(n) => n.to_string(),
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn event(ph: &str, name: &str, ts_us: f64, tid: u64) -> Value {
    obj(vec![
        ("name", Value::Str(name.to_string())),
        ("cat", Value::Str("freeride-g".to_string())),
        ("ph", Value::Str(ph.to_string())),
        ("ts", Value::Float(ts_us)),
        ("pid", Value::UInt(0)),
        ("tid", Value::UInt(tid)),
    ])
}

/// Raw-value wrapper so a hand-built [`Value`] tree can go through
/// `serde_json::to_string`.
struct Raw(Value);

impl Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

/// Export the trace in Chrome `trace_event` JSON format (load in
/// chrome://tracing or <https://ui.perfetto.dev>). Spans become matched
/// `B`/`E` duration-event pairs, emitted depth-first so each track's
/// events nest; per-node spans land on per-node named tracks.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut events: Vec<Value> = Vec::new();

    // Named tracks for every tid that appears.
    let mut named: Vec<u64> = Vec::new();
    for span in &trace.spans {
        let tid = chrome_tid(span.node);
        if !named.contains(&tid) {
            named.push(tid);
            events.push(obj(vec![
                ("name", Value::Str("thread_name".to_string())),
                ("ph", Value::Str("M".to_string())),
                ("pid", Value::UInt(0)),
                ("tid", Value::UInt(tid)),
                ("args", obj(vec![("name", Value::Str(chrome_track_name(span.node)))])),
            ]));
        }
    }

    // Depth-first emission keeps B/E pairs properly nested per track.
    let mut children: Vec<Vec<&Span>> = vec![Vec::new(); trace.spans.len()];
    let mut roots: Vec<&Span> = Vec::new();
    for span in &trace.spans {
        match span.parent {
            Some(p) => children[p as usize].push(span),
            None => roots.push(span),
        }
    }
    fn emit(span: &Span, children: &[Vec<&Span>], events: &mut Vec<Value>) {
        let tid = chrome_tid(span.node);
        let name = span.kind.label();
        let mut begin = event("B", name, span.start.as_nanos() as f64 / 1e3, tid);
        if !span.attrs.is_empty() {
            if let Value::Object(fields) = &mut begin {
                fields.push((
                    "args".to_string(),
                    Value::Object(
                        span.attrs.iter().map(|(k, v)| (k.clone(), Value::UInt(*v))).collect(),
                    ),
                ));
            }
        }
        events.push(begin);
        for child in &children[span.id as usize] {
            emit(child, children, events);
        }
        events.push(event("E", name, span.end.as_nanos() as f64 / 1e3, tid));
    }
    for root in roots {
        emit(root, &children, &mut events);
    }

    let mut doc = vec![
        ("traceEvents".to_string(), Value::Array(events)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
    ];
    if let Some(meta) = &trace.meta {
        doc.push(("otherData".to_string(), meta.to_value()));
    }
    serde_json::to_string(&Raw(Value::Object(doc))).expect("serialize chrome trace")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanKind, Tracer};
    use fg_sim::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn sample() -> Trace {
        let mut tr = Tracer::new();
        tr.metrics.counter("passes").inc();
        tr.metrics.gauge("wan_bw").set(1.25e6);
        tr.metrics.histogram("pass_seconds", &[1.0, 10.0]).observe(2.5);
        let run = tr.begin(SpanKind::Run, None, t(0));
        let pass = tr.begin(SpanKind::Pass, None, t(0));
        let read = tr.record(SpanKind::NodeRead, Some(NodeRef::data(1)), t(0), t(500));
        tr.attr(read, "bytes", 4096);
        tr.record(SpanKind::Compute, None, t(500), t(900));
        tr.end(pass, t(1000));
        tr.end(run, t(1000));
        tr.finish(Some(RunMeta {
            app: "kmeans".into(),
            dataset: "d".into(),
            dataset_bytes: 4096,
            data_nodes: 2,
            compute_nodes: 4,
            wan_bw: 1.25e6,
            repo_machine: "pentium-700".into(),
            compute_machine: "pentium-700".into(),
            cache_mode: "Local".into(),
        }))
    }

    #[test]
    fn jsonl_roundtrip_is_exact() {
        let trace = sample();
        let text = to_jsonl(&trace);
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn jsonl_roundtrip_without_meta_or_metrics() {
        let mut tr = Tracer::new();
        let run = tr.begin(SpanKind::Run, None, t(3));
        tr.end(run, t(9));
        let trace = tr.finish(None);
        let back = from_jsonl(&to_jsonl(&trace)).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn jsonl_rejects_garbage() {
        assert!(from_jsonl("{\"nope\": 1}\n").is_err());
        assert!(from_jsonl("not json").is_err());
    }

    #[test]
    fn chrome_export_has_matched_begin_end_pairs() {
        let json = to_chrome_json(&sample());
        let doc = serde_json::value_from_str(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // Walk in file order, one stack per tid: every E must close the
        // innermost B of its track.
        let mut stacks: Vec<(u64, Vec<String>)> = Vec::new();
        for ev in events {
            let ph = match ev.get("ph").unwrap() {
                Value::Str(s) => s.clone(),
                other => panic!("ph not a string: {other:?}"),
            };
            if ph == "M" {
                continue;
            }
            let tid = match ev.get("tid").unwrap() {
                Value::UInt(u) => *u,
                other => panic!("tid not an integer: {other:?}"),
            };
            let name = match ev.get("name").unwrap() {
                Value::Str(s) => s.clone(),
                other => panic!("name not a string: {other:?}"),
            };
            let stack = match stacks.iter_mut().find(|(t, _)| *t == tid) {
                Some((_, s)) => s,
                None => {
                    stacks.push((tid, Vec::new()));
                    &mut stacks.last_mut().unwrap().1
                }
            };
            match ph.as_str() {
                "B" => stack.push(name),
                "E" => assert_eq!(stack.pop().as_deref(), Some(name.as_str()), "unmatched E"),
                other => panic!("unexpected phase {other}"),
            }
        }
        for (tid, stack) in &stacks {
            assert!(stack.is_empty(), "unclosed B events on tid {tid}: {stack:?}");
        }
    }

    #[test]
    fn chrome_export_names_node_tracks() {
        let json = to_chrome_json(&sample());
        assert!(json.contains("\"data-1\""));
        assert!(json.contains("\"phases\""));
        assert!(json.contains("\"displayTimeUnit\""));
        // Attributes ride along as args on the B event.
        assert!(json.contains("\"bytes\""));
    }

    #[test]
    fn chrome_tids_are_disjoint_by_role() {
        assert_eq!(chrome_tid(None), 0);
        assert_ne!(chrome_tid(Some(NodeRef::data(3))), chrome_tid(Some(NodeRef::compute(3))));
        assert_ne!(chrome_tid(Some(NodeRef::compute(0))), chrome_tid(Some(NodeRef::master())));
    }
}
