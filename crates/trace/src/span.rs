//! Spans: where the virtual time of a run went.
//!
//! A span is a named interval on the simulation clock, optionally
//! attributed to one node of the deployment, nested under a parent span.
//! The executor emits one `Run` span per execution, one `Pass` span per
//! pass, one phase span per non-zero phase (retrieval, network, cache
//! I/O, compute, gather, global reduce, recovery components), and
//! per-node detail spans under the phases. Because timestamps are
//! integer-nanosecond [`SimTime`]s, phase durations recovered from a
//! trace equal the executor's own accounting bit for bit.

use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use fg_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Which side of the deployment a span is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NodeRole {
    /// A repository (origin) data node.
    Data,
    /// A compute node.
    Compute,
    /// A non-local caching-site node.
    Cache,
    /// The master (compute node 0) acting in its master role.
    Master,
}

/// A node reference: role plus index within that role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeRef {
    /// The node's role.
    pub role: NodeRole,
    /// Index within the role (data node 0..n, compute node 0..c, ...).
    pub index: usize,
}

impl NodeRef {
    /// A data-node reference.
    pub fn data(index: usize) -> NodeRef {
        NodeRef { role: NodeRole::Data, index }
    }
    /// A compute-node reference.
    pub fn compute(index: usize) -> NodeRef {
        NodeRef { role: NodeRole::Compute, index }
    }
    /// A caching-site-node reference.
    pub fn cache(index: usize) -> NodeRef {
        NodeRef { role: NodeRole::Cache, index }
    }
    /// The master node.
    pub fn master() -> NodeRef {
        NodeRef { role: NodeRole::Master, index: 0 }
    }
}

impl std::fmt::Display for NodeRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.role {
            NodeRole::Data => write!(f, "data-{}", self.index),
            NodeRole::Compute => write!(f, "compute-{}", self.index),
            NodeRole::Cache => write!(f, "cache-{}", self.index),
            NodeRole::Master => write!(f, "master"),
        }
    }
}

/// What a span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// The whole execution.
    Run,
    /// One pass over the data.
    Pass,
    /// Crash-detection timeouts and backoff (recovery component).
    FaultDetection,
    /// Origin-repository retrieval makespan.
    Retrieval,
    /// Origin WAN transfer makespan.
    Network,
    /// Non-local caching-site disk makespan.
    CacheDisk,
    /// Non-local caching-site WAN makespan.
    CacheNetwork,
    /// Local-reduction makespan across compute nodes.
    Compute,
    /// Reduction-object gather at the master (`T_ro`).
    Gather,
    /// Global reduction at the master (`T_g`).
    GlobalReduce,
    /// Replica-migration overhead (recovery component).
    Migration,
    /// Master re-execution of abandoned straggler chunks (recovery).
    StragglerRecovery,
    /// One data node reading its chunk share (child of `Retrieval` or
    /// `CacheDisk`).
    NodeRead,
    /// One sender→receiver WAN flow (child of `Network` or
    /// `CacheNetwork`).
    NodeTransfer,
    /// One compute node's local reduction (child of `Compute`).
    NodeCompute,
    /// One node's serialized object send (child of `Gather`).
    NodeSend,
    /// The master re-running one abandoned node's chunks (child of
    /// `StragglerRecovery`).
    NodeReexec,
    /// One scheduled job's lifetime, submission to completion (child of
    /// `Run` in a scheduler trace; parents `JobQueued` and phase spans).
    Job,
    /// Time a job spent queued before placement (child of `Job`).
    JobQueued,
    /// A running job evicted from the grid, waiting to resume (child of
    /// `Job` in a scheduler trace).
    Preempted,
    /// Snapshot of a job's reduction state taken before a preemption or
    /// a migration (child of `Job`; zero-length marker).
    Checkpoint,
    /// A running job moving its remaining work to another replica
    /// (child of `Job`; covers the checkpoint-transfer-restart window).
    Migrate,
}

impl SpanKind {
    /// The pass-phase kinds, i.e. the direct children of a `Pass` span
    /// that map one-to-one onto `PassReport` fields, in clock order.
    pub const PHASES: [SpanKind; 10] = [
        SpanKind::FaultDetection,
        SpanKind::Retrieval,
        SpanKind::Network,
        SpanKind::CacheDisk,
        SpanKind::CacheNetwork,
        SpanKind::Compute,
        SpanKind::Gather,
        SpanKind::GlobalReduce,
        SpanKind::Migration,
        SpanKind::StragglerRecovery,
    ];

    /// True for the pass-phase kinds of [`SpanKind::PHASES`].
    pub fn is_phase(self) -> bool {
        SpanKind::PHASES.contains(&self)
    }

    /// Stable lowercase label (used by the exporters).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Run => "run",
            SpanKind::Pass => "pass",
            SpanKind::FaultDetection => "fault-detection",
            SpanKind::Retrieval => "retrieval",
            SpanKind::Network => "network",
            SpanKind::CacheDisk => "cache-disk",
            SpanKind::CacheNetwork => "cache-network",
            SpanKind::Compute => "compute",
            SpanKind::Gather => "gather",
            SpanKind::GlobalReduce => "global-reduce",
            SpanKind::Migration => "migration",
            SpanKind::StragglerRecovery => "straggler-recovery",
            SpanKind::NodeRead => "node-read",
            SpanKind::NodeTransfer => "node-transfer",
            SpanKind::NodeCompute => "node-compute",
            SpanKind::NodeSend => "node-send",
            SpanKind::NodeReexec => "node-reexec",
            SpanKind::Job => "job",
            SpanKind::JobQueued => "job-queued",
            SpanKind::Preempted => "preempted",
            SpanKind::Checkpoint => "checkpoint",
            SpanKind::Migrate => "migrate",
        }
    }
}

/// One interval on the simulation clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Sequential id; equals the span's index in [`Trace::spans`].
    pub id: u64,
    /// Enclosing span, if any (the `Run` span has none).
    pub parent: Option<u64>,
    /// What the span measures.
    pub kind: SpanKind,
    /// Node attribution, if the interval belongs to one node.
    pub node: Option<NodeRef>,
    /// Start instant.
    pub start: SimTime,
    /// End instant (`>= start`).
    pub end: SimTime,
    /// Integer-valued attributes (chunk counts, byte counts, ...).
    #[serde(default)]
    pub attrs: Vec<(String, u64)>,
}

impl Span {
    /// The span's length.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }

    /// Look up an integer attribute.
    pub fn attr(&self, key: &str) -> Option<u64> {
        self.attrs.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// Run-level header mirrored from the execution report, so a trace is
/// self-describing (and a report can be rebuilt from it alone).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMeta {
    /// Application name.
    pub app: String,
    /// Dataset identifier.
    pub dataset: String,
    /// Logical dataset size in bytes.
    pub dataset_bytes: u64,
    /// Data nodes used.
    pub data_nodes: usize,
    /// Compute nodes used.
    pub compute_nodes: usize,
    /// Per-data-node WAN bandwidth, bytes/sec.
    pub wan_bw: f64,
    /// Repository machine type name.
    pub repo_machine: String,
    /// Compute machine type name.
    pub compute_machine: String,
    /// Cache mode, as the middleware names it (`"Local"`, ...).
    pub cache_mode: String,
}

/// A completed trace: spans plus a metrics snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Run-level header, when the producer attached one.
    pub meta: Option<RunMeta>,
    /// All spans, in creation (= start-time) order, `spans[i].id == i`.
    pub spans: Vec<Span>,
    /// Counter/gauge/histogram values at the end of the run.
    #[serde(default)]
    pub metrics: MetricsSnapshot,
}

impl Trace {
    /// The root (`Run`) span, if the trace has any spans.
    pub fn root(&self) -> Option<&Span> {
        self.spans.iter().find(|s| s.parent.is_none())
    }

    /// The `Pass` spans, in pass order.
    pub fn passes(&self) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.kind == SpanKind::Pass).collect()
    }

    /// Direct children of span `id`, in creation order.
    pub fn children(&self, id: u64) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.parent == Some(id)).collect()
    }

    /// Exact sum of the durations of every span of `kind`. Integer
    /// nanosecond arithmetic: for phase kinds this equals the
    /// corresponding `ExecutionReport` component sum bit for bit.
    pub fn component_sum(&self, kind: SpanKind) -> SimDuration {
        self.spans.iter().filter(|s| s.kind == kind).map(Span::duration).sum()
    }

    /// Structural validation: ids are positional, parents precede
    /// children and contain them, ends don't precede starts, and each
    /// node's spans start in non-decreasing order.
    pub fn check_well_formed(&self) -> Result<(), String> {
        let mut last_start_per_node: Vec<(NodeRef, SimTime)> = Vec::new();
        for (i, s) in self.spans.iter().enumerate() {
            if s.id != i as u64 {
                return Err(format!("span {} stored at index {i}", s.id));
            }
            if s.end < s.start {
                return Err(format!("span {} ends before it starts", s.id));
            }
            if let Some(p) = s.parent {
                if p >= s.id {
                    return Err(format!("span {} has non-preceding parent {p}", s.id));
                }
                let parent = &self.spans[p as usize];
                if s.start < parent.start || s.end > parent.end {
                    return Err(format!(
                        "span {} [{}, {}] escapes parent {p} [{}, {}]",
                        s.id, s.start, s.end, parent.start, parent.end
                    ));
                }
            }
            if let Some(node) = s.node {
                match last_start_per_node.iter_mut().find(|(n, _)| *n == node) {
                    Some((_, last)) => {
                        if s.start < *last {
                            return Err(format!(
                                "span {} starts at {} before node's previous span at {}",
                                s.id, s.start, last
                            ));
                        }
                        *last = s.start;
                    }
                    None => last_start_per_node.push((node, s.start)),
                }
            }
        }
        Ok(())
    }
}

/// Builds a [`Trace`] while a run executes. `begin`/`end` maintain a
/// stack of open spans; `record` emits an already-closed child of the
/// innermost open span.
#[derive(Default)]
pub struct Tracer {
    spans: Vec<Span>,
    stack: Vec<u64>,
    /// Counters, gauges and histograms recorded alongside the spans.
    pub metrics: MetricsRegistry,
}

impl Tracer {
    /// A fresh tracer with no spans and empty metrics.
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Open a span starting at `start`; it becomes the parent of
    /// subsequent spans until [`Tracer::end`] closes it.
    pub fn begin(&mut self, kind: SpanKind, node: Option<NodeRef>, start: SimTime) -> u64 {
        let id = self.spans.len() as u64;
        self.spans.push(Span {
            id,
            parent: self.stack.last().copied(),
            kind,
            node,
            start,
            end: start,
            attrs: Vec::new(),
        });
        self.stack.push(id);
        id
    }

    /// Close the innermost open span (must be `id`) at `end`.
    pub fn end(&mut self, id: u64, end: SimTime) {
        assert_eq!(self.stack.pop(), Some(id), "span end out of order");
        let span = &mut self.spans[id as usize];
        assert!(end >= span.start, "span {} would end before it starts", id);
        span.end = end;
    }

    /// Emit a closed span `[start, end]` as a child of the innermost
    /// open span.
    pub fn record(
        &mut self,
        kind: SpanKind,
        node: Option<NodeRef>,
        start: SimTime,
        end: SimTime,
    ) -> u64 {
        assert!(end >= start, "recorded span ends before it starts");
        let id = self.spans.len() as u64;
        self.spans.push(Span {
            id,
            parent: self.stack.last().copied(),
            kind,
            node,
            start,
            end,
            attrs: Vec::new(),
        });
        id
    }

    /// Attach an integer attribute to span `id`.
    pub fn attr(&mut self, id: u64, key: &str, value: u64) {
        self.spans[id as usize].attrs.push((key.to_string(), value));
    }

    /// Finish the trace. Panics if any span is still open.
    pub fn finish(self, meta: Option<RunMeta>) -> Trace {
        assert!(self.stack.is_empty(), "{} span(s) left open", self.stack.len());
        Trace { meta, spans: self.spans, metrics: self.metrics.snapshot() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn nested_spans_build_a_tree() {
        let mut tr = Tracer::new();
        let run = tr.begin(SpanKind::Run, None, t(0));
        let pass = tr.begin(SpanKind::Pass, None, t(0));
        let read = tr.record(SpanKind::NodeRead, Some(NodeRef::data(1)), t(0), t(5));
        tr.attr(read, "chunks", 3);
        tr.end(pass, t(10));
        tr.end(run, t(10));
        let trace = tr.finish(None);
        trace.check_well_formed().unwrap();
        assert_eq!(trace.root().unwrap().kind, SpanKind::Run);
        assert_eq!(trace.passes().len(), 1);
        assert_eq!(trace.children(pass).len(), 1);
        assert_eq!(trace.spans[read as usize].attr("chunks"), Some(3));
        assert_eq!(trace.spans[read as usize].parent, Some(pass));
    }

    #[test]
    fn component_sum_is_exact() {
        let mut tr = Tracer::new();
        let run = tr.begin(SpanKind::Run, None, t(0));
        tr.record(SpanKind::Retrieval, None, t(0), t(7));
        tr.record(SpanKind::Retrieval, None, t(7), t(10));
        tr.end(run, t(10));
        let trace = tr.finish(None);
        assert_eq!(trace.component_sum(SpanKind::Retrieval), SimDuration::from_nanos(10));
        assert_eq!(trace.component_sum(SpanKind::Network), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "span end out of order")]
    fn mismatched_end_panics() {
        let mut tr = Tracer::new();
        let a = tr.begin(SpanKind::Run, None, t(0));
        let _b = tr.begin(SpanKind::Pass, None, t(0));
        tr.end(a, t(5));
    }

    #[test]
    #[should_panic(expected = "left open")]
    fn open_span_fails_finish() {
        let mut tr = Tracer::new();
        tr.begin(SpanKind::Run, None, t(0));
        tr.finish(None);
    }

    #[test]
    fn well_formedness_catches_escaping_children() {
        let mut tr = Tracer::new();
        let run = tr.begin(SpanKind::Run, None, t(5));
        tr.record(SpanKind::Pass, None, t(5), t(9));
        tr.end(run, t(9));
        let mut trace = tr.finish(None);
        trace.check_well_formed().unwrap();
        trace.spans[1].end = t(11); // past the parent's end
        assert!(trace.check_well_formed().unwrap_err().contains("escapes parent"));
    }

    #[test]
    fn well_formedness_catches_per_node_regression() {
        let mut tr = Tracer::new();
        let run = tr.begin(SpanKind::Run, None, t(0));
        tr.record(SpanKind::NodeRead, Some(NodeRef::data(0)), t(6), t(8));
        tr.record(SpanKind::NodeRead, Some(NodeRef::data(0)), t(2), t(8));
        tr.end(run, t(8));
        let trace = tr.finish(None);
        assert!(trace.check_well_formed().unwrap_err().contains("before node's previous"));
    }

    #[test]
    fn phase_kinds_are_flagged() {
        for k in SpanKind::PHASES {
            assert!(k.is_phase());
        }
        assert!(!SpanKind::Run.is_phase());
        assert!(!SpanKind::NodeCompute.is_phase());
    }
}
