//! A small metrics registry: counters, gauges, and fixed-bucket
//! histograms.
//!
//! Handles are cheap clones over shared cells, so a closure (an engine
//! event hook, say) can own a [`Counter`] while the registry keeps
//! reporting it. No external dependencies, consistent with the
//! workspace's vendored-only policy. Snapshots are deterministic:
//! instruments are reported in name order.

use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::rc::Rc;

/// A monotonically increasing integer.
#[derive(Debug, Clone, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Add `by` to the counter.
    pub fn add(&self, by: u64) {
        self.0.set(self.0.get() + by);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A settable real value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Rc<Cell<f64>>);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, value: f64) {
        self.0.set(value);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds of the finite buckets, strictly increasing; an
    /// implicit overflow bucket catches everything above the last bound.
    bounds: Vec<f64>,
    /// Per-bucket observation counts, `bounds.len() + 1` long.
    counts: Vec<u64>,
    sum: f64,
    /// Non-finite observations turned away at the door (kept out of the
    /// snapshot so the serialized schema — and every golden trace
    /// pinned against it — is unchanged).
    rejected: u64,
}

/// A fixed-bucket histogram of real observations.
#[derive(Debug, Clone)]
pub struct Histogram(Rc<RefCell<HistogramInner>>);

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram(Rc::new(RefCell::new(HistogramInner {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            rejected: 0,
        })))
    }

    /// Record one observation into its bucket. Non-finite values (NaN,
    /// ±∞) are counted under [`Histogram::rejected`] and otherwise
    /// ignored — a single NaN folded into `sum` would poison it, and
    /// every later snapshot, forever. The bucket search is a binary
    /// `partition_point` over the sorted bounds, placing `value` in the
    /// first bucket whose upper bound is `>= value` exactly as the
    /// linear scan it replaces did.
    pub fn observe(&self, value: f64) {
        let mut inner = self.0.borrow_mut();
        if !value.is_finite() {
            inner.rejected += 1;
            return;
        }
        let idx = inner.bounds.partition_point(|&b| b < value);
        inner.counts[idx] += 1;
        inner.sum += value;
    }

    /// Observations turned away as non-finite.
    pub fn rejected(&self) -> u64 {
        self.0.borrow().rejected
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.borrow().counts.iter().sum()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.0.borrow().sum
    }
}

/// Named instruments, created on first use.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RefCell<Vec<(String, Counter)>>,
    gauges: RefCell<Vec<(String, Gauge)>>,
    histograms: RefCell<Vec<(String, Histogram)>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.counters.borrow_mut();
        if let Some((_, c)) = counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter::default();
        counters.push((name.to_string(), c.clone()));
        c
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut gauges = self.gauges.borrow_mut();
        if let Some((_, g)) = gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let g = Gauge::default();
        gauges.push((name.to_string(), g.clone()));
        g
    }

    /// The histogram named `name`, created with `bounds` on first use
    /// (later calls return the existing instrument and ignore `bounds`).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut histograms = self.histograms.borrow_mut();
        if let Some((_, h)) = histograms.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let h = Histogram::new(bounds);
        histograms.push((name.to_string(), h.clone()));
        h
    }

    /// Freeze the current values into a serializable snapshot, sorted by
    /// instrument name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> =
            self.counters.borrow().iter().map(|(n, c)| (n.clone(), c.get())).collect();
        counters.sort();
        let mut gauges: Vec<(String, f64)> =
            self.gauges.borrow().iter().map(|(n, g)| (n.clone(), g.get())).collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<HistogramSnapshot> = self
            .histograms
            .borrow()
            .iter()
            .map(|(n, h)| {
                let inner = h.0.borrow();
                HistogramSnapshot {
                    name: n.clone(),
                    bounds: inner.bounds.clone(),
                    counts: inner.counts.clone(),
                    sum: inner.sum,
                }
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// One histogram's frozen state.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Instrument name.
    pub name: String,
    /// Finite bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (`bounds.len() + 1`, last is overflow).
    pub counts: Vec<u64>,
    /// Sum of observations.
    pub sum: f64,
}

/// Why [`HistogramSnapshot::quantile_exact`] could not produce an
/// in-range estimate. Callers that can live with a clamped answer use
/// [`quantile`](HistogramSnapshot::quantile); callers that must not
/// mistake "no data" or "saturated" for a real reading match on this.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuantileError {
    /// The histogram holds no observations.
    Empty,
    /// `q` is outside `[0, 1]`.
    OutOfRange {
        /// The offending quantile.
        q: f64,
    },
    /// The target rank falls in the unbounded overflow bucket: the
    /// histogram saturated its top bucket and can only name the floor
    /// of the answer (its last finite edge), or nothing at all when it
    /// has no finite buckets.
    Saturated {
        /// Last finite bucket edge — a lower bound on the true
        /// quantile — or `None` for a histogram with no finite edges.
        floor: Option<f64>,
    },
}

impl std::fmt::Display for QuantileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantileError::Empty => write!(f, "empty histogram has no quantiles"),
            QuantileError::OutOfRange { q } => write!(f, "quantile {q} outside [0, 1]"),
            QuantileError::Saturated { floor: Some(b) } => {
                write!(f, "rank falls in the overflow bucket (true value is above {b})")
            }
            QuantileError::Saturated { floor: None } => {
                write!(f, "histogram has no finite buckets to resolve the rank")
            }
        }
    }
}

impl std::error::Error for QuantileError {}

impl HistogramSnapshot {
    /// Total observations across all buckets.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Bucket-interpolated quantile estimate for `q ∈ [0, 1]`: walk
    /// the cumulative counts to the bucket holding the target rank and
    /// interpolate linearly inside it. Every degenerate case is a
    /// typed [`QuantileError`], never a fabricated number: an empty
    /// histogram is [`Empty`](QuantileError::Empty), and a rank
    /// landing in the unbounded overflow bucket is
    /// [`Saturated`](QuantileError::Saturated) carrying the last
    /// finite edge as a floor.
    pub fn quantile_exact(&self, q: f64) -> Result<f64, QuantileError> {
        if !(0.0..=1.0).contains(&q) {
            return Err(QuantileError::OutOfRange { q });
        }
        let total = self.count();
        if total == 0 {
            return Err(QuantileError::Empty);
        }
        let rank = q * total as f64;
        let mut cumulative = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            let next = cumulative + count;
            if (next as f64) >= rank && count > 0 {
                return match self.bounds.get(i) {
                    Some(&hi) => {
                        let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                        let into = (rank - cumulative as f64) / count as f64;
                        Ok(lo + (hi - lo) * into.clamp(0.0, 1.0))
                    }
                    // Overflow bucket: unbounded above — the histogram
                    // cannot see past its last edge.
                    None => Err(QuantileError::Saturated { floor: self.bounds.last().copied() }),
                };
            }
            cumulative = next;
        }
        // Unreachable for well-formed counts (the last occupied bucket
        // always answers above); treat it as saturation, not as zero.
        Err(QuantileError::Saturated { floor: self.bounds.last().copied() })
    }

    /// [`quantile_exact`](HistogramSnapshot::quantile_exact) as a
    /// clamped convenience: a saturated reading answers with its floor
    /// (the last finite edge — a lower bound on the truth), and the
    /// cases with no defensible number at all (`Empty`, `OutOfRange`,
    /// saturation with no finite edges) answer `None`. Before the
    /// audit this method silently answered `0.0` for the last case.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        match self.quantile_exact(q) {
            Ok(v) => Some(v),
            Err(QuantileError::Saturated { floor }) => floor,
            Err(QuantileError::Empty | QuantileError::OutOfRange { .. }) => None,
        }
    }

    /// Fraction of observations strictly above the bucket edge
    /// `bound` — the tail-mass reading for heavy-tail assertions.
    /// `None` when `bound` is not one of this histogram's edges (the
    /// histogram cannot resolve arbitrary thresholds) or when the
    /// histogram is empty — an empty histogram has no tail, and
    /// answering `0.0` let "no data" impersonate "no outliers".
    pub fn tail_fraction(&self, bound: f64) -> Option<f64> {
        let idx = self.bounds.iter().position(|&b| b == bound)?;
        let total = self.count();
        if total == 0 {
            return None;
        }
        let above: u64 = self.counts[idx + 1..].iter().sum();
        Some(above as f64 / total as f64)
    }
}

/// All instrument values at one instant.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram states, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A counter's value, if it was registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// A gauge's value, if it was registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// A histogram's state, if it was registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Render as a Prometheus-style text exposition (for logs and the
    /// `trace_dump` example).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "{name} {v}");
        }
        for h in &self.histograms {
            let mut cumulative = 0u64;
            for (i, count) in h.counts.iter().enumerate() {
                cumulative += count;
                let le = h.bounds.get(i).map_or("+Inf".to_string(), f64::to_string);
                let _ = writeln!(out, "{}_bucket{{le=\"{le}\"}} {cumulative}", h.name);
            }
            let _ = writeln!(out, "{}_sum {}", h.name, h.sum);
            let _ = writeln!(out, "{}_count {cumulative}", h.name);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_through_clones() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("passes");
        let b = reg.counter("passes");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("passes").get(), 3);
        assert_eq!(reg.snapshot().counter("passes"), Some(3));
    }

    #[test]
    fn gauges_keep_the_last_value() {
        let reg = MetricsRegistry::new();
        reg.gauge("nodes").set(4.0);
        reg.gauge("nodes").set(8.0);
        assert_eq!(reg.snapshot().gauge("nodes"), Some(8.0));
        assert_eq!(reg.snapshot().gauge("missing"), None);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("pass_seconds", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 55.5);
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("pass_seconds").unwrap().counts, vec![1, 1, 1]);
    }

    #[test]
    fn non_finite_observations_cannot_poison_the_sum() {
        // Regression: one NaN folded into `sum` made it NaN for the
        // rest of the run (and +∞ is just as sticky); every later
        // snapshot and text rendering carried the poison.
        let reg = MetricsRegistry::new();
        let h = reg.histogram("t", &[1.0, 10.0]);
        h.observe(5.0);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(f64::NEG_INFINITY);
        h.observe(0.5);
        assert_eq!(h.count(), 2, "rejected values must not occupy buckets");
        assert_eq!(h.sum(), 5.5);
        assert_eq!(h.rejected(), 3);
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("t").unwrap().counts, vec![1, 1, 0]);
        assert!(snap.histogram("t").unwrap().sum.is_finite());
    }

    #[test]
    fn partition_point_bucketing_matches_the_linear_scan() {
        // Bound-exact, mid-bucket, below-all, and above-all values land
        // where `position(|b| value <= b)` put them.
        let reg = MetricsRegistry::new();
        let bounds = [1.0, 5.0, 25.0];
        let h = reg.histogram("t", &bounds);
        let linear = |v: f64| bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len());
        for v in [0.0, 0.5, 1.0, 1.5, 5.0, 7.0, 25.0, 26.0, 1e12] {
            h.observe(v);
            let snap = reg.snapshot();
            let idx = linear(v);
            assert!(
                snap.histogram("t").unwrap().counts[idx] >= 1,
                "value {v} should land in bucket {idx}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        let reg = MetricsRegistry::new();
        reg.histogram("bad", &[2.0, 1.0]);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let reg = MetricsRegistry::new();
        reg.counter("z").inc();
        reg.counter("a").inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].0, "a");
        assert_eq!(snap.counters[1].0, "z");
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("q", &[10.0, 20.0, 40.0]);
        // 10 observations in (0,10], 10 in (10,20]: the median sits at
        // the 10/20 boundary, p25 halfway into the first bucket.
        for i in 0..10 {
            h.observe(i as f64 + 0.5);
            h.observe(10.0 + i as f64 + 0.5);
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("q").unwrap();
        assert_eq!(hs.count(), 20);
        assert!((hs.quantile(0.5).unwrap() - 10.0).abs() < 1e-9);
        assert!((hs.quantile(0.25).unwrap() - 5.0).abs() < 1e-9);
        assert!((hs.quantile(1.0).unwrap() - 20.0).abs() < 1e-9);
        assert_eq!(hs.quantile(1.5), None);
        // Overflow observations report the last edge, never +inf.
        h.observe(1e9);
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("q").unwrap().quantile(1.0), Some(40.0));
        // Empty histograms have no quantiles.
        let empty = HistogramSnapshot::default();
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn empty_histograms_answer_typed_errors_not_zero() {
        // Regression (edge-case audit): an empty histogram used to
        // answer tail_fraction(edge) = Some(0.0), letting "no data"
        // impersonate "no outliers"; quantile's trailing fallback
        // could likewise fabricate 0.0 for a boundless histogram.
        let reg = MetricsRegistry::new();
        reg.histogram("e", &[1.0, 10.0]);
        let snap = reg.snapshot();
        let hs = snap.histogram("e").unwrap();
        assert_eq!(hs.tail_fraction(1.0), None, "empty tail must be None, not 0.0");
        assert_eq!(hs.quantile(0.5), None);
        assert_eq!(hs.quantile_exact(0.5), Err(QuantileError::Empty));
        assert_eq!(hs.quantile_exact(1.5), Err(QuantileError::OutOfRange { q: 1.5 }));
    }

    #[test]
    fn single_sample_quantiles_stay_inside_their_bucket() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("s", &[1.0, 10.0]);
        h.observe(5.0);
        let snap = reg.snapshot();
        let hs = snap.histogram("s").unwrap();
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            let v = hs.quantile_exact(q).unwrap();
            assert!((1.0..=10.0).contains(&v), "q={q} escaped the bucket: {v}");
        }
        assert_eq!(hs.tail_fraction(1.0), Some(1.0));
        assert_eq!(hs.tail_fraction(10.0), Some(0.0));
    }

    #[test]
    fn saturated_top_buckets_are_typed_saturation() {
        // All mass in the unbounded overflow bucket: the histogram can
        // only name a floor, and must say so.
        let reg = MetricsRegistry::new();
        let h = reg.histogram("sat", &[1.0, 10.0]);
        h.observe(1e9);
        let snap = reg.snapshot();
        let hs = snap.histogram("sat").unwrap();
        assert_eq!(hs.quantile_exact(0.5), Err(QuantileError::Saturated { floor: Some(10.0) }));
        // The clamped convenience reports the floor — a defensible
        // lower bound — not a fabricated interpolation.
        assert_eq!(hs.quantile(0.5), Some(10.0));
        // A histogram with no finite buckets has nothing to clamp to.
        let boundless =
            HistogramSnapshot { name: "b".into(), bounds: vec![], counts: vec![3], sum: 30.0 };
        assert_eq!(boundless.quantile_exact(0.5), Err(QuantileError::Saturated { floor: None }));
        assert_eq!(boundless.quantile(0.5), None, "was silently 0.0 before the audit");
    }

    #[test]
    fn tail_fraction_reads_mass_past_an_edge() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("t", &[1.0, 10.0]);
        for _ in 0..8 {
            h.observe(0.5);
        }
        h.observe(5.0);
        h.observe(100.0);
        let snap = reg.snapshot();
        let hs = snap.histogram("t").unwrap();
        assert!((hs.tail_fraction(1.0).unwrap() - 0.2).abs() < 1e-12);
        assert!((hs.tail_fraction(10.0).unwrap() - 0.1).abs() < 1e-12);
        // Only real edges resolve; arbitrary thresholds don't.
        assert_eq!(hs.tail_fraction(3.0), None);
        assert_eq!(HistogramSnapshot::default().tail_fraction(1.0), None);
    }

    #[test]
    fn text_rendering_includes_every_instrument() {
        let reg = MetricsRegistry::new();
        reg.counter("passes").add(2);
        reg.gauge("bw").set(1e6);
        reg.histogram("t", &[1.0]).observe(0.5);
        let text = reg.snapshot().render_text();
        assert!(text.contains("passes 2"));
        assert!(text.contains("bw 1000000"));
        assert!(text.contains("t_bucket{le=\"1\"} 1"));
        assert!(text.contains("t_count 1"));
    }
}
