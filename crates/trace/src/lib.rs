//! `fg-trace`: structured tracing and metrics for the FREERIDE-G
//! runtime.
//!
//! The prediction model in the paper is profile-driven: one instrumented
//! run yields the `(t_d, t_n, t_c, T_ro, T_g, r)` breakdown that
//! parameterizes every prediction. This crate records that breakdown as
//! a tree of [`Span`]s on the simulated clock — nested phases
//! (retrieval, network, cache, compute, gather, global reduce, recovery)
//! with per-node attribution — plus a [`MetricsRegistry`] of counters,
//! gauges, and fixed-bucket histograms. Traces serialize losslessly to
//! JSON lines ([`to_jsonl`] / [`from_jsonl`]) and to Chrome
//! `trace_event` JSON ([`to_chrome_json`]) for chrome://tracing and
//! Perfetto.
//!
//! Timestamps are [`fg_sim::SimTime`] (integer nanoseconds), so
//! component sums over a trace are exact: summing a phase's spans
//! reproduces the corresponding `ExecutionReport` field bit-for-bit.

#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod span;
pub mod window;

pub use export::{chrome_tid, from_jsonl, to_chrome_json, to_jsonl};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, QuantileError,
};
pub use span::{NodeRef, NodeRole, RunMeta, Span, SpanKind, Trace, Tracer};
pub use window::{expose_text, SlidingCounter, SlidingHistogram, WindowSpec, WindowedInstrument};
