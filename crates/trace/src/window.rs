//! Sliding-window metrics: counters and histograms over a ring of
//! fixed-width time buckets.
//!
//! The cumulative instruments in [`metrics`](crate::metrics) answer
//! "how many, ever?" — the right shape for a run summary, the wrong
//! shape for a live dashboard, where a deadline-violation spike an
//! hour ago must not drown out the last minute. The windowed
//! instruments here keep the most recent `buckets × bucket_width`
//! seconds of observations and forget the rest, bucket by bucket, as
//! the clock advances.
//!
//! Time is supplied by the caller on every call (`now` in seconds):
//! the scheduler feeds its sim clock, a wall-clock consumer feeds
//! `Instant`-derived seconds. Nothing here reads a clock, so the
//! instruments stay deterministic under the sim clock — the property
//! the flight recorder's golden tests lean on. Clocks must not run
//! backwards: a `now` earlier than the newest bucket is clamped into
//! it rather than resurrecting expired history.
//!
//! [`expose_text`] renders a set of windowed instruments in the
//! Prometheus text exposition format (`# TYPE` headers, cumulative
//! `_bucket{le="…"}` series), zero-dep like the rest of the crate.

use crate::metrics::HistogramSnapshot;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The shape of a sliding window: `buckets` ring slots, each covering
/// `bucket_width` seconds of time, for a total span of
/// `buckets × bucket_width`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowSpec {
    /// Width of one time bucket, in seconds. Must be positive.
    pub bucket_width: f64,
    /// Number of buckets in the ring. Must be at least one.
    pub buckets: usize,
}

impl WindowSpec {
    /// A window of `buckets` slots, `bucket_width` seconds each.
    pub fn new(bucket_width: f64, buckets: usize) -> WindowSpec {
        assert!(
            bucket_width.is_finite() && bucket_width > 0.0,
            "bucket width must be positive and finite"
        );
        assert!(buckets >= 1, "a window needs at least one bucket");
        WindowSpec { bucket_width, buckets }
    }

    /// Total time the window covers, in seconds.
    pub fn span(&self) -> f64 {
        self.bucket_width * self.buckets as f64
    }

    /// The bucket epoch (absolute bucket index since t=0) holding `now`.
    fn epoch(&self, now: f64) -> u64 {
        ((now / self.bucket_width).floor().max(0.0)) as u64
    }
}

/// The rotating ring shared by both windowed instruments: slot values
/// of type `T`, a head epoch, and the zero-fill rotation as time moves.
#[derive(Debug, Clone, PartialEq)]
struct Ring<T> {
    spec: WindowSpec,
    /// Absolute bucket index of the newest slot; `u64::MAX` until the
    /// first observation or advance.
    head: u64,
    slots: Vec<T>,
}

impl<T: Clone + Default> Ring<T> {
    fn new(spec: WindowSpec) -> Ring<T> {
        Ring { spec, head: u64::MAX, slots: vec![T::default(); spec.buckets] }
    }

    /// Rotate the ring so the slot for `now`'s epoch is current,
    /// clearing every bucket the clock skipped over. Returns the slot
    /// index for `now` (clamped into the newest bucket if `now` is in
    /// the past — time does not run backwards here).
    fn advance(&mut self, now: f64) -> usize {
        let epoch = self.spec.epoch(now);
        if self.head == u64::MAX {
            self.head = epoch;
        } else if epoch > self.head {
            let skipped = (epoch - self.head).min(self.spec.buckets as u64);
            for i in 1..=skipped {
                let idx = ((self.head + i) % self.spec.buckets as u64) as usize;
                self.slots[idx] = T::default();
            }
            self.head = epoch;
        }
        (self.head % self.spec.buckets as u64) as usize
    }

    /// Slots currently inside the window (unordered).
    fn live(&self) -> impl Iterator<Item = &T> {
        self.slots.iter()
    }
}

/// A counter over a sliding time window: increments land in the bucket
/// their timestamp falls in, and [`sum`](SlidingCounter::sum) /
/// [`rate`](SlidingCounter::rate) read only the buckets still inside
/// the window.
#[derive(Debug, Clone, PartialEq)]
pub struct SlidingCounter {
    ring: Ring<f64>,
}

impl SlidingCounter {
    /// An empty windowed counter.
    pub fn new(spec: WindowSpec) -> SlidingCounter {
        SlidingCounter { ring: Ring::new(spec) }
    }

    /// The window shape.
    pub fn spec(&self) -> WindowSpec {
        self.ring.spec
    }

    /// Add `by` at instant `now`. Non-finite increments are ignored —
    /// one NaN would poison every later [`rate`](SlidingCounter::rate).
    pub fn add(&mut self, now: f64, by: f64) {
        if !by.is_finite() {
            return;
        }
        let idx = self.ring.advance(now);
        self.ring.slots[idx] += by;
    }

    /// Add one at instant `now`.
    pub fn inc(&mut self, now: f64) {
        self.add(now, 1.0);
    }

    /// Total increments inside the window ending at `now`.
    pub fn sum(&mut self, now: f64) -> f64 {
        self.ring.advance(now);
        self.ring.live().sum()
    }

    /// Increments per second over the window ending at `now` (the
    /// window's full span is the denominator, so a burst followed by
    /// silence decays instead of sticking).
    pub fn rate(&mut self, now: f64) -> f64 {
        self.sum(now) / self.ring.spec.span()
    }
}

/// Per-bucket state of a [`SlidingHistogram`]: observation counts per
/// value bucket (`bounds.len() + 1`, last is overflow) plus the sum.
#[derive(Debug, Clone, PartialEq, Default)]
struct HistSlot {
    counts: Vec<u64>,
    sum: f64,
}

/// A fixed-bound histogram over a sliding time window: observations
/// land in the time bucket of their timestamp, and every read merges
/// the buckets still inside the window into one
/// [`HistogramSnapshot`] — so [`quantile`](SlidingHistogram::quantile)
/// inherits the cumulative histogram's interpolation *and* its typed
/// edge-case handling (empty windows answer `None`, not 0.0).
#[derive(Debug, Clone, PartialEq)]
pub struct SlidingHistogram {
    bounds: Vec<f64>,
    ring: Ring<HistSlot>,
}

impl SlidingHistogram {
    /// A windowed histogram with the given strictly increasing value
    /// bucket bounds.
    pub fn new(spec: WindowSpec, bounds: &[f64]) -> SlidingHistogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        SlidingHistogram { bounds: bounds.to_vec(), ring: Ring::new(spec) }
    }

    /// The window shape.
    pub fn spec(&self) -> WindowSpec {
        self.ring.spec
    }

    /// Record `value` at instant `now`. Non-finite values are dropped.
    pub fn observe(&mut self, now: f64, value: f64) {
        if !value.is_finite() {
            return;
        }
        let idx = self.ring.advance(now);
        let slot = &mut self.ring.slots[idx];
        if slot.counts.is_empty() {
            slot.counts = vec![0; self.bounds.len() + 1];
        }
        let b = self.bounds.partition_point(|&b| b < value);
        slot.counts[b] += 1;
        slot.sum += value;
    }

    /// Merge the live buckets into one frozen histogram named `name`.
    pub fn merged(&mut self, now: f64, name: &str) -> HistogramSnapshot {
        self.ring.advance(now);
        let mut counts = vec![0u64; self.bounds.len() + 1];
        let mut sum = 0.0;
        for slot in self.ring.live() {
            if slot.counts.is_empty() {
                continue;
            }
            for (c, s) in counts.iter_mut().zip(&slot.counts) {
                *c += s;
            }
            sum += slot.sum;
        }
        HistogramSnapshot { name: name.to_string(), bounds: self.bounds.clone(), counts, sum }
    }

    /// Observations inside the window ending at `now`.
    pub fn count(&mut self, now: f64) -> u64 {
        self.ring.advance(now);
        self.ring.live().map(|s| s.counts.iter().sum::<u64>()).sum()
    }

    /// Bucket-interpolated quantile over the window ending at `now`;
    /// `None` when the window is empty or `q` is out of range (see
    /// [`HistogramSnapshot::quantile`]).
    pub fn quantile(&mut self, now: f64, q: f64) -> Option<f64> {
        self.merged(now, "window").quantile(q)
    }
}

/// One named windowed instrument, for [`expose_text`].
#[derive(Debug)]
pub enum WindowedInstrument<'a> {
    /// A [`SlidingCounter`], exposed as a gauge of its windowed rate
    /// (`<name>_rate_per_sec`) plus the windowed sum (`<name>_sum`).
    Counter {
        /// Metric name (Prometheus identifier rules apply).
        name: &'a str,
        /// The instrument.
        counter: &'a mut SlidingCounter,
    },
    /// A [`SlidingHistogram`], exposed as cumulative
    /// `_bucket{le="…"}` series plus `_sum` and `_count`.
    Histogram {
        /// Metric name.
        name: &'a str,
        /// The instrument.
        histogram: &'a mut SlidingHistogram,
    },
}

/// Render windowed instruments in the Prometheus text exposition
/// format at instant `now`: a `# TYPE` header per metric, cumulative
/// `le` buckets for histograms, and a trailing `window_span_seconds`
/// gauge so a scraper knows what interval the numbers cover.
pub fn expose_text(now: f64, instruments: &mut [WindowedInstrument<'_>]) -> String {
    let mut out = String::new();
    let mut span: f64 = 0.0;
    for inst in instruments.iter_mut() {
        match inst {
            WindowedInstrument::Counter { name, counter } => {
                span = span.max(counter.spec().span());
                let _ = writeln!(out, "# TYPE {name}_rate_per_sec gauge");
                let _ = writeln!(out, "{name}_rate_per_sec {}", counter.rate(now));
                let _ = writeln!(out, "# TYPE {name}_sum gauge");
                let _ = writeln!(out, "{name}_sum {}", counter.sum(now));
            }
            WindowedInstrument::Histogram { name, histogram } => {
                span = span.max(histogram.spec().span());
                let merged = histogram.merged(now, name);
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                for (i, count) in merged.counts.iter().enumerate() {
                    cumulative += count;
                    let le = merged.bounds.get(i).map_or("+Inf".to_string(), f64::to_string);
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                }
                let _ = writeln!(out, "{name}_sum {}", merged.sum);
                let _ = writeln!(out, "{name}_count {cumulative}");
            }
        }
    }
    let _ = writeln!(out, "# TYPE window_span_seconds gauge");
    let _ = writeln!(out, "window_span_seconds {span}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WindowSpec {
        WindowSpec::new(10.0, 6) // 60-second window
    }

    #[test]
    fn counter_sums_only_the_window() {
        let mut c = SlidingCounter::new(spec());
        c.add(1.0, 5.0);
        c.add(15.0, 3.0);
        assert_eq!(c.sum(15.0), 8.0);
        // 70s later the first bucket has rotated out, the second too.
        assert_eq!(c.sum(85.0), 0.0);
    }

    #[test]
    fn rate_uses_the_full_span_as_denominator() {
        let mut c = SlidingCounter::new(spec());
        for i in 0..60 {
            c.inc(i as f64);
        }
        assert!((c.rate(59.0) - 1.0).abs() < 1e-12);
        // A silent half-window halves the rate.
        assert!((c.rate(89.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn a_long_silence_clears_everything() {
        let mut c = SlidingCounter::new(spec());
        c.add(0.0, 100.0);
        assert_eq!(c.sum(1e9), 0.0);
    }

    #[test]
    fn time_cannot_run_backwards() {
        let mut c = SlidingCounter::new(spec());
        c.add(50.0, 1.0);
        // A stale timestamp lands in the newest bucket, not a revived
        // old one — and must not panic or corrupt the ring.
        c.add(3.0, 1.0);
        assert_eq!(c.sum(50.0), 2.0);
    }

    #[test]
    fn non_finite_increments_are_dropped() {
        let mut c = SlidingCounter::new(spec());
        c.add(0.0, f64::NAN);
        c.add(0.0, f64::INFINITY);
        c.add(0.0, 2.0);
        assert_eq!(c.sum(0.0), 2.0);
    }

    #[test]
    fn histogram_quantile_tracks_the_window() {
        let mut h = SlidingHistogram::new(spec(), &[1.0, 10.0, 100.0]);
        for _ in 0..99 {
            h.observe(5.0, 0.5);
        }
        h.observe(5.0, 50.0);
        let p99 = h.quantile(5.0, 0.99).unwrap();
        assert!(p99 <= 1.0, "99 of 100 samples are below 1.0, got {p99}");
        // Once the early mass expires, the window is empty: typed None,
        // never a silent zero.
        assert_eq!(h.quantile(500.0, 0.99), None);
    }

    #[test]
    fn histogram_merges_across_buckets() {
        let mut h = SlidingHistogram::new(spec(), &[10.0, 20.0]);
        for i in 0..10 {
            h.observe(i as f64, 5.0); // bucket epochs 0..=0
            h.observe(10.0 + i as f64, 15.0); // epoch 1
        }
        assert_eq!(h.count(19.0), 20);
        let m = h.merged(19.0, "w");
        assert_eq!(m.counts, vec![10, 10, 0]);
        assert!((m.sum - 200.0).abs() < 1e-9);
        let median = m.quantile(0.5).unwrap();
        assert!((median - 10.0).abs() < 1e-9, "median at the bucket edge, got {median}");
    }

    #[test]
    fn determinism_identical_feeds_are_bit_identical() {
        let feed: Vec<(f64, f64)> = (0..500).map(|i| (i as f64 * 0.37, (i % 17) as f64)).collect();
        let run = |feed: &[(f64, f64)]| {
            let mut h = SlidingHistogram::new(spec(), &[2.0, 8.0, 16.0]);
            for &(t, v) in feed {
                h.observe(t, v);
            }
            h
        };
        assert_eq!(run(&feed), run(&feed));
    }

    #[test]
    fn exposition_renders_types_buckets_and_span() {
        let mut c = SlidingCounter::new(spec());
        c.add(1.0, 4.0);
        let mut h = SlidingHistogram::new(spec(), &[1.0]);
        h.observe(1.0, 0.5);
        h.observe(1.0, 3.0);
        let text = expose_text(
            5.0,
            &mut [
                WindowedInstrument::Counter { name: "submits", counter: &mut c },
                WindowedInstrument::Histogram { name: "wait_seconds", histogram: &mut h },
            ],
        );
        assert!(text.contains("# TYPE submits_rate_per_sec gauge"));
        assert!(text.contains("submits_sum 4"));
        assert!(text.contains("# TYPE wait_seconds histogram"));
        assert!(text.contains("wait_seconds_bucket{le=\"1\"} 1"));
        assert!(text.contains("wait_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("wait_seconds_count 2"));
        assert!(text.contains("window_span_seconds 60"));
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        WindowSpec::new(1.0, 0);
    }
}
