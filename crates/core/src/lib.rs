//! # fg-predict — the performance prediction framework
//!
//! The paper's contribution (§3): a profile-based analytical model that
//! predicts the execution time of a FREERIDE-G application on any
//! `(n, c, b, s)` configuration from a single profile run, accurate
//! enough to drive resource and replica selection.
//!
//! ```text
//! T_exec = T_disk + T_network + T_compute
//! ```
//!
//! * [`profile`] — the summary information collected from a profile run.
//! * [`model`] — the component predictors, with the three compute models
//!   of increasing fidelity (*no communication*, *reduction
//!   communication*, *global reduction*).
//! * [`classes`] — the reduction-object size and global-reduction time
//!   classes, with inference from multiple profile runs.
//! * [`hetero`] — cross-cluster scaling factors (§3.4).
//! * [`selection`] — enumeration and ranking of (replica, configuration)
//!   pairs (§3's resource allocation problem).
//! * [`cache`] — non-local caching-site planning and prediction (the
//!   §2.1 goal the paper deferred, implemented as an extension).
//! * [`bandwidth`] — on-line estimators of the achievable WAN bandwidth
//!   `b̂` (the §3.2 ingredient the paper imports from related work).
//! * [`reselect`] — mid-run replica re-selection: re-ranks candidates
//!   and migrates when observed bandwidth deviates from nominal.
//! * [`migrate`] — the migration cost/benefit model: prices a
//!   checkpoint move (`T̂_migrate`) and gates re-selection verdicts.
//! * [`calibrate`] — least-squares measurement of the interconnect
//!   parameters `w` and `l` ("experimentally determined", §3.3.1).
//! * [`error`] — the relative-error metric of §5.
//! * [`predictor`] — the pluggable [`Predictor`](predictor::Predictor)
//!   seam every ranking/placement/migration call site prices through,
//!   with the analytical model as the default impl.

#![warn(missing_docs)]

pub mod bandwidth;
pub mod cache;
pub mod calibrate;
pub mod classes;
pub mod error;
pub mod hetero;
pub mod migrate;
pub mod model;
pub mod predictor;
pub mod profile;
pub mod reselect;
pub mod selection;

pub use cache::{predict_plan_components, predict_with_plan, CachePlan};
pub use classes::{AppClasses, GlobalReduceClass, RObjSizeClass};
pub use error::relative_error;
pub use hetero::ScalingFactors;
pub use migrate::{
    decide_migration, migration_cost, MigrationCost, MigrationDecision, MigrationPolicy,
};
pub use model::{ComputeModel, ExecTimePredictor, InterconnectParams, Prediction, Target};
pub use predictor::{AnalyticalPredictor, Observation, Predictor};
pub use profile::Profile;
pub use reselect::ReselectionController;
pub use selection::{
    rank_deployments, try_predict_deployment, try_rank_deployments, try_rank_deployments_with,
    Candidate, SelectionError,
};
