//! Estimating the achievable WAN bandwidth `b̂`.
//!
//! The network predictor needs the bandwidth available to the *next*
//! data-movement task. §3.2 of the paper: "in recent years, many efforts
//! have focused on determining the effective bandwidth available for a
//! particular data movement task [Dinda, Qiao, Vazhkudai & Schopf] — we
//! can directly use this work to determine `b̂`." This module supplies
//! that ingredient: time-series estimators over observed transfer
//! bandwidths, plus a synthetic shared-WAN trace generator to evaluate
//! them (we have no wide-area testbed, same as the paper).

use fg_sim::rng::stream_rng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An on-line bandwidth estimator: feed observations, ask for the next
/// value.
pub trait BandwidthEstimator {
    /// Record one observed transfer bandwidth (bytes/sec).
    fn observe(&mut self, bw: f64);
    /// Estimate the bandwidth of the next transfer. Panics if called
    /// before any observation.
    fn estimate(&self) -> f64;
    /// Estimator name (for reports).
    fn name(&self) -> &'static str;
}

/// Predicts the most recent observation (the naive baseline).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LastValue {
    last: Option<f64>,
}

impl BandwidthEstimator for LastValue {
    fn observe(&mut self, bw: f64) {
        self.last = Some(bw);
    }
    fn estimate(&self) -> f64 {
        self.last.expect("no observations yet")
    }
    fn name(&self) -> &'static str {
        "last-value"
    }
}

/// Sliding-window mean.
#[derive(Debug, Clone, Serialize)]
pub struct MovingAverage {
    window: usize,
    values: std::collections::VecDeque<f64>,
}

impl MovingAverage {
    /// A mean over the last `window >= 1` observations.
    pub fn new(window: usize) -> MovingAverage {
        assert!(window >= 1);
        MovingAverage { window, values: Default::default() }
    }
}

/// Hand-written so deserialization enforces the same `window >= 1`
/// invariant as [`MovingAverage::new`] — a derived impl would accept
/// `{"window": 0}` and then panic on the first `estimate()`.
impl serde::Deserialize for MovingAverage {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected object for MovingAverage"))?;
        let window: usize = serde::Deserialize::from_value(
            serde::get_field(obj, "window")
                .ok_or_else(|| serde::Error::custom("missing field window"))?,
        )?;
        if window < 1 {
            return Err(serde::Error::custom("MovingAverage window must be >= 1"));
        }
        let values: std::collections::VecDeque<f64> = serde::Deserialize::from_value(
            serde::get_field(obj, "values")
                .ok_or_else(|| serde::Error::custom("missing field values"))?,
        )?;
        if values.len() > window {
            return Err(serde::Error::custom("MovingAverage holds more values than its window"));
        }
        Ok(MovingAverage { window, values })
    }
}

impl BandwidthEstimator for MovingAverage {
    fn observe(&mut self, bw: f64) {
        self.values.push_back(bw);
        if self.values.len() > self.window {
            self.values.pop_front();
        }
    }
    fn estimate(&self) -> f64 {
        assert!(!self.values.is_empty(), "no observations yet");
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }
    fn name(&self) -> &'static str {
        "moving-average"
    }
}

/// Exponentially weighted moving average (the workhorse of the NWS-era
/// forecasters).
#[derive(Debug, Clone, Serialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Smoothing factor `0 < alpha <= 1` (weight of the newest sample).
    pub fn new(alpha: f64) -> Ewma {
        assert!(alpha > 0.0 && alpha <= 1.0);
        Ewma { alpha, value: None }
    }
}

/// Hand-written for the same reason as [`MovingAverage`]'s impl: the
/// `0 < alpha <= 1` constructor invariant must survive deserialization.
impl serde::Deserialize for Ewma {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let obj =
            value.as_object().ok_or_else(|| serde::Error::custom("expected object for Ewma"))?;
        let alpha: f64 = serde::Deserialize::from_value(
            serde::get_field(obj, "alpha")
                .ok_or_else(|| serde::Error::custom("missing field alpha"))?,
        )?;
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(serde::Error::custom("Ewma alpha must satisfy 0 < alpha <= 1"));
        }
        let value: Option<f64> = serde::Deserialize::from_value(
            serde::get_field(obj, "value")
                .ok_or_else(|| serde::Error::custom("missing field value"))?,
        )?;
        Ok(Ewma { alpha, value })
    }
}

impl BandwidthEstimator for Ewma {
    fn observe(&mut self, bw: f64) {
        self.value = Some(match self.value {
            None => bw,
            Some(v) => self.alpha * bw + (1.0 - self.alpha) * v,
        });
    }
    fn estimate(&self) -> f64 {
        self.value.expect("no observations yet")
    }
    fn name(&self) -> &'static str {
        "ewma"
    }
}

/// A synthetic shared-WAN bandwidth trace: a mean level with AR(1)
/// cross-traffic noise and a slow periodic (diurnal-like) swing —
/// the statistical shape wide-area studies report.
pub fn synthetic_trace(mean_bw: f64, samples: usize, seed: u64) -> Vec<f64> {
    assert!(mean_bw > 0.0 && samples > 0);
    let mut rng = stream_rng(seed, "wan-trace");
    let mut ar = 0.0f64;
    (0..samples)
        .map(|i| {
            ar = 0.8 * ar + rng.gen_range(-0.12..0.12);
            let diurnal = 0.15 * (i as f64 * std::f64::consts::TAU / 48.0).sin();
            (mean_bw * (1.0 + ar + diurnal)).max(mean_bw * 0.05)
        })
        .collect()
}

/// Mean relative estimation error of an estimator over a trace
/// (one-step-ahead, after a warm-up observation).
///
/// Samples that are zero, negative, or non-finite carry no relative
/// scale, so they are observed (the estimator still sees them) but
/// excluded from the error mean rather than poisoning it with
/// divisions by zero. Panics if no sample can be scored.
pub fn evaluate(estimator: &mut dyn BandwidthEstimator, trace: &[f64]) -> f64 {
    assert!(trace.len() >= 2);
    let mut total = 0.0;
    let mut count = 0usize;
    estimator.observe(trace[0]);
    for &actual in &trace[1..] {
        if actual > 0.0 && actual.is_finite() {
            let predicted = estimator.estimate();
            total += (predicted - actual).abs() / actual;
            count += 1;
        }
        estimator.observe(actual);
    }
    assert!(count > 0, "trace has no positive finite samples to score");
    total / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_value_echoes() {
        let mut e = LastValue::default();
        e.observe(10.0);
        assert_eq!(e.estimate(), 10.0);
        e.observe(20.0);
        assert_eq!(e.estimate(), 20.0);
    }

    #[test]
    fn moving_average_windows() {
        let mut e = MovingAverage::new(3);
        for v in [1.0, 2.0, 3.0, 4.0] {
            e.observe(v);
        }
        assert!((e.estimate() - 3.0).abs() < 1e-12); // mean of 2, 3, 4
    }

    #[test]
    fn ewma_smooths() {
        let mut e = Ewma::new(0.5);
        e.observe(10.0);
        e.observe(20.0);
        assert!((e.estimate() - 15.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no observations")]
    fn estimating_before_observing_panics() {
        LastValue::default().estimate();
    }

    #[test]
    fn trace_stays_positive_and_near_mean() {
        let trace = synthetic_trace(40e6, 500, 7);
        assert_eq!(trace.len(), 500);
        assert!(trace.iter().all(|&b| b > 0.0));
        let mean = trace.iter().sum::<f64>() / trace.len() as f64;
        assert!((mean / 40e6 - 1.0).abs() < 0.25, "trace mean drifted: {mean}");
    }

    #[test]
    fn trace_is_seeded_and_deterministic() {
        assert_eq!(synthetic_trace(1e6, 50, 1), synthetic_trace(1e6, 50, 1));
        assert_ne!(synthetic_trace(1e6, 50, 1), synthetic_trace(1e6, 50, 2));
    }

    #[test]
    fn evaluate_skips_zero_samples_instead_of_reporting_inf() {
        // Regression: a single zero sample used to divide by zero and
        // drive the mean relative error to infinity (or NaN).
        let trace = [10.0, 10.0, 0.0, 10.0, 10.0];
        let err = evaluate(&mut LastValue::default(), &trace);
        assert!(err.is_finite(), "error must stay finite: {err}");
    }

    #[test]
    #[should_panic(expected = "no positive finite samples")]
    fn evaluate_rejects_unscorable_traces() {
        evaluate(&mut LastValue::default(), &[10.0, 0.0, 0.0]);
    }

    #[test]
    fn moving_average_deserialization_enforces_window_invariant() {
        // Regression: the derived impl accepted `window: 0` (bypassing
        // the constructor assert) and then panicked on `estimate()`.
        let bad = r#"{"window": 0, "values": []}"#;
        assert!(serde_json::from_str::<MovingAverage>(bad).is_err());
        let overfull = r#"{"window": 1, "values": [1.0, 2.0]}"#;
        assert!(serde_json::from_str::<MovingAverage>(overfull).is_err());
        let good = r#"{"window": 3, "values": [1.0, 2.0]}"#;
        let ma: MovingAverage = serde_json::from_str(good).expect("valid state");
        assert!((ma.estimate() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ewma_deserialization_enforces_alpha_invariant() {
        for bad in [
            r#"{"alpha": 0.0, "value": null}"#,
            r#"{"alpha": -0.5, "value": null}"#,
            r#"{"alpha": 1.5, "value": null}"#,
        ] {
            assert!(serde_json::from_str::<Ewma>(bad).is_err(), "{bad}");
        }
        let mut e: Ewma = serde_json::from_str(r#"{"alpha": 0.5, "value": 10.0}"#).unwrap();
        e.observe(20.0);
        assert!((e.estimate() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn estimator_serialization_round_trips() {
        let mut ma = MovingAverage::new(4);
        ma.observe(1.0);
        ma.observe(3.0);
        let back: MovingAverage =
            serde_json::from_str(&serde_json::to_string(&ma).unwrap()).unwrap();
        assert_eq!(back.estimate(), ma.estimate());
        let mut e = Ewma::new(0.25);
        e.observe(8.0);
        let back: Ewma = serde_json::from_str(&serde_json::to_string(&e).unwrap()).unwrap();
        assert_eq!(back.estimate(), e.estimate());
    }

    #[test]
    fn smoothing_beats_nothing_smart_on_noisy_traces() {
        // On an AR + periodic trace, EWMA and the moving average should
        // not be worse than predicting the global picture blindly; and
        // every estimator should land within a sane error band.
        let trace = synthetic_trace(40e6, 400, 11);
        let e_last = evaluate(&mut LastValue::default(), &trace);
        let e_ma = evaluate(&mut MovingAverage::new(8), &trace);
        let e_ewma = evaluate(&mut Ewma::new(0.4), &trace);
        for (name, e) in [("last", e_last), ("ma", e_ma), ("ewma", e_ewma)] {
            assert!(e < 0.25, "{name} estimator error too large: {e}");
        }
        // The AR(1) component makes the last value informative, but the
        // smoothed estimators must be competitive. EWMA tracks closely;
        // the 8-sample mean lags the diurnal swing, so its band is wider
        // (ratios are stable near 1.2x / 1.6x across seeds).
        assert!(e_ewma < e_last * 1.5);
        assert!(e_ma < e_last * 2.0);
    }
}
