//! Non-local caching prediction — the §2.1 resource-selection goal the
//! paper deferred ("in our current implementation, we have not considered
//! non-local caching of data"), implemented here as an extension.
//!
//! A multi-pass application whose per-node data share exceeds the compute
//! nodes' scratch storage cannot cache locally. The middleware then
//! either stages the chunks at a *non-local caching site* (writing
//! through on the first pass, reading back on later ones) or re-fetches
//! from the origin repository every pass. The predictor mirrors both
//! modes with the same constructive style the paper uses for `T_ro`:
//! known volumes over known bandwidths, layered on a profile collected
//! under ordinary local caching.

use crate::classes::AppClasses;
use crate::model::{
    predict_compute, predict_disk, predict_network, ComputeModel, ExecTimePredictor,
    InterconnectParams, Prediction, Target,
};
use fg_cluster::{CacheSite, ComputeSite, Deployment};
use serde::{Deserialize, Serialize};

/// How a deployment will keep chunks between passes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CachePlan {
    /// Chunks fit in compute-node scratch storage (or the run is
    /// single-pass): the base model applies unchanged.
    Local,
    /// Chunks are staged at a non-local caching site.
    NonLocal {
        /// Storage nodes serving the cache.
        nodes: usize,
        /// Per-cache-node stream bandwidth to the compute site, bytes/sec.
        wan_bw: f64,
        /// Per-cache-node disk bandwidth, bytes/sec.
        disk_bw: f64,
    },
    /// No storage anywhere: every pass re-fetches from the origin.
    Refetch,
}

impl CachePlan {
    /// Decide the plan a deployment would use for a dataset of
    /// `dataset_bytes` and an application making `passes` passes —
    /// the same decision rule the middleware executor applies.
    pub fn for_deployment(deployment: &Deployment, dataset_bytes: u64, passes: usize) -> CachePlan {
        CachePlan::for_candidate(
            &deployment.compute,
            deployment.cache.as_ref(),
            deployment.config.compute_nodes,
            dataset_bytes,
            passes,
        )
    }

    /// The same decision from borrowed parts — what a hot selection loop
    /// holding a [`fg_cluster::DeploymentRef`] calls, with no owned
    /// `Deployment` in sight.
    pub fn for_candidate(
        compute: &ComputeSite,
        cache: Option<&CacheSite>,
        compute_nodes: usize,
        dataset_bytes: u64,
        passes: usize,
    ) -> CachePlan {
        if passes <= 1 {
            return CachePlan::Local; // nothing to keep
        }
        let per_node = dataset_bytes.div_ceil(compute_nodes as u64);
        if per_node <= compute.node_storage_bytes {
            CachePlan::Local
        } else if let Some(cs) = cache {
            CachePlan::NonLocal {
                nodes: cs.nodes.min(compute_nodes),
                wan_bw: cs.wan.stream_bw,
                disk_bw: cs.site.machine.disk_bw,
            }
        } else {
            CachePlan::Refetch
        }
    }
}

/// Predict a target under a cache plan, starting from a predictor whose
/// profile was collected under **local caching** (the standard profile).
///
/// * `NonLocal` adds, per pass, one full-volume disk operation and one
///   WAN crossing at the caching site (write-through once, reads after),
///   and removes the local cache I/O embedded in the profile's scaled
///   compute component (`passes * s_hat / (c_hat * compute_disk_bw)`).
/// * `Refetch` multiplies the origin disk and network components by the
///   pass count (one fetch per pass instead of one overall) and removes
///   the local cache I/O the same way.
pub fn predict_with_plan(
    predictor: &ExecTimePredictor,
    target: &Target,
    plan: &CachePlan,
    compute_disk_bw: f64,
) -> Prediction {
    predict_plan_components(
        &predictor.profile,
        predictor.classes,
        &predictor.interconnect,
        predictor.model,
        target,
        plan,
        compute_disk_bw,
    )
}

/// The borrowed core of [`predict_with_plan`]: the identical arithmetic
/// over a borrowed profile, so a caller scoring thousands of candidates
/// never clones a [`Profile`] (and its heap-allocated names) to build a
/// throwaway [`ExecTimePredictor`]. Panics on a degenerate target, like
/// the predictor it stands in for.
#[allow(clippy::too_many_arguments)]
pub fn predict_plan_components(
    profile: &crate::profile::Profile,
    classes: AppClasses,
    interconnect: &InterconnectParams,
    model: ComputeModel,
    target: &Target,
    plan: &CachePlan,
    compute_disk_bw: f64,
) -> Prediction {
    if let Err(e) = target.validate() {
        panic!("cannot predict for degenerate target: {e}");
    }
    let base = Prediction {
        t_disk: predict_disk(profile, target),
        t_network: predict_network(profile, target),
        t_compute: predict_compute(profile, target, model, classes, interconnect),
    };
    let passes = profile.passes as f64;
    let s = target.dataset_bytes as f64;
    let local_io = passes * s / (target.compute_nodes as f64 * compute_disk_bw);
    match plan {
        CachePlan::Local => base,
        CachePlan::NonLocal { nodes, wan_bw, disk_bw } => Prediction {
            t_disk: base.t_disk + passes * s / (*nodes as f64 * disk_bw),
            t_network: base.t_network + passes * s / (*nodes as f64 * wan_bw),
            t_compute: (base.t_compute - local_io).max(0.0),
        },
        CachePlan::Refetch => Prediction {
            t_disk: base.t_disk * passes,
            t_network: base.t_network * passes,
            t_compute: (base.t_compute - local_io).max(0.0),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::AppClasses;
    use crate::model::{ComputeModel, InterconnectParams};
    use crate::profile::Profile;
    use fg_cluster::{CacheSite, ComputeSite, Configuration, RepositorySite, Wan};

    fn profile() -> Profile {
        Profile {
            app: "em".into(),
            data_nodes: 1,
            compute_nodes: 1,
            wan_bw: 40e6,
            dataset_bytes: 1_000_000_000,
            t_disk: 40.0,
            t_network: 25.0,
            t_compute: 500.0,
            t_ro: 0.0,
            t_g: 1.0,
            max_obj_bytes: 1_000,
            passes: 10,
            repo_machine: "pentium-700".into(),
            compute_machine: "pentium-700".into(),
        }
    }

    fn predictor() -> ExecTimePredictor {
        ExecTimePredictor {
            profile: profile(),
            classes: AppClasses::LINEAR_CONSTANT_LINEAR,
            interconnect: InterconnectParams { bandwidth: 100e6, latency: 0.015 },
            model: ComputeModel::GlobalReduction,
        }
    }

    fn deployment(storage: u64, cache: Option<CacheSite>) -> Deployment {
        let mut site = ComputeSite::pentium_myrinet("cs", 16);
        site.node_storage_bytes = storage;
        let mut d = Deployment::new(
            RepositorySite::pentium_repository("repo", 8),
            site,
            Wan::per_stream(40e6),
            Configuration::new(2, 4),
        );
        d.cache = cache;
        d
    }

    fn cache_site() -> CacheSite {
        CacheSite::new(RepositorySite::pentium_repository("cache", 8), 4, Wan::per_stream(60e6))
    }

    #[test]
    fn plan_decision_rules() {
        // Fits: 1 GB over 4 nodes = 250 MB/node.
        let fits = deployment(300_000_000, None);
        assert_eq!(CachePlan::for_deployment(&fits, 1_000_000_000, 10), CachePlan::Local);
        // Too big, cache site attached.
        let starved = deployment(100_000_000, Some(cache_site()));
        assert!(matches!(
            CachePlan::for_deployment(&starved, 1_000_000_000, 10),
            CachePlan::NonLocal { nodes: 4, .. }
        ));
        // Too big, no cache site.
        let refetch = deployment(100_000_000, None);
        assert_eq!(CachePlan::for_deployment(&refetch, 1_000_000_000, 10), CachePlan::Refetch);
        // Single pass never needs storage.
        assert_eq!(CachePlan::for_deployment(&refetch, 1_000_000_000, 1), CachePlan::Local);
    }

    #[test]
    fn cache_nodes_clamped_to_compute_nodes() {
        let mut cs = cache_site();
        cs.nodes = 8; // more than the 4 compute nodes
        let d = deployment(1, Some(cs));
        match CachePlan::for_deployment(&d, 1_000_000_000, 10) {
            CachePlan::NonLocal { nodes, .. } => assert_eq!(nodes, 4),
            other => panic!("expected NonLocal, got {other:?}"),
        }
    }

    #[test]
    fn local_plan_is_the_base_prediction() {
        let p = predictor();
        let t =
            Target { data_nodes: 2, compute_nodes: 4, wan_bw: 40e6, dataset_bytes: 1_000_000_000 };
        assert_eq!(predict_with_plan(&p, &t, &CachePlan::Local, 25e6), p.predict(&t));
    }

    #[test]
    fn nonlocal_plan_adds_cache_site_terms() {
        let p = predictor();
        let t =
            Target { data_nodes: 2, compute_nodes: 4, wan_bw: 40e6, dataset_bytes: 1_000_000_000 };
        let plan = CachePlan::NonLocal { nodes: 4, wan_bw: 50e6, disk_bw: 25e6 };
        let base = p.predict(&t);
        let with = predict_with_plan(&p, &t, &plan, 25e6);
        // 10 passes * 1 GB / (4 * 25 MB/s) = 100 s of cache disk.
        assert!((with.t_disk - (base.t_disk + 100.0)).abs() < 1e-9);
        // 10 * 1 GB / (4 * 50 MB/s) = 50 s of cache WAN.
        assert!((with.t_network - (base.t_network + 50.0)).abs() < 1e-9);
        // Local cache I/O removed: 10 * 1 GB / (4 * 25 MB/s) = 100 s.
        assert!((with.t_compute - (base.t_compute - 100.0)).abs() < 1e-9);
    }

    #[test]
    fn refetch_plan_multiplies_origin_io() {
        let p = predictor();
        let t =
            Target { data_nodes: 2, compute_nodes: 4, wan_bw: 40e6, dataset_bytes: 1_000_000_000 };
        let base = p.predict(&t);
        let with = predict_with_plan(&p, &t, &CachePlan::Refetch, 25e6);
        assert!((with.t_disk - base.t_disk * 10.0).abs() < 1e-9);
        assert!((with.t_network - base.t_network * 10.0).abs() < 1e-9);
        assert!(with.t_compute < base.t_compute);
    }

    #[test]
    fn a_good_cache_site_beats_refetching() {
        let p = predictor();
        let t =
            Target { data_nodes: 2, compute_nodes: 4, wan_bw: 40e6, dataset_bytes: 1_000_000_000 };
        let plan = CachePlan::NonLocal { nodes: 4, wan_bw: 50e6, disk_bw: 25e6 };
        let cached = predict_with_plan(&p, &t, &plan, 25e6);
        let refetch = predict_with_plan(&p, &t, &CachePlan::Refetch, 25e6);
        assert!(cached.total() < refetch.total());
    }
}
