//! Profile summary information (§3.1).
//!
//! "To fit this model, predictions have to be based on a profile, which
//! is collected by executing the application on one dataset and one
//! execution configuration." The summary comprises the configuration
//! `(n, c, b)`, the dataset size `s`, the breakdown `(t_d, t_n, t_c)`,
//! the maximum reduction-object size, the reduction-object communication
//! time, and the global reduction time.

use fg_middleware::ExecutionReport;
use fg_trace::{SpanKind, Trace};
use serde::{Deserialize, Serialize};

/// Everything the prediction framework keeps from a profile run.
/// Times are in seconds (the model is real-valued arithmetic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Application name.
    pub app: String,
    /// Storage nodes used, `n`.
    pub data_nodes: usize,
    /// Compute nodes used, `c`.
    pub compute_nodes: usize,
    /// Per-data-node WAN bandwidth, `b` (bytes/sec).
    pub wan_bw: f64,
    /// Dataset size, `s` (logical bytes).
    pub dataset_bytes: u64,
    /// Data retrieval component, `t_d`.
    pub t_disk: f64,
    /// Network communication component, `t_n`.
    pub t_network: f64,
    /// Processing component, `t_c` (inclusive of `t_ro` and `t_g`).
    pub t_compute: f64,
    /// Reduction-object communication time within `t_c`.
    pub t_ro: f64,
    /// Global reduction time within `t_c`.
    pub t_g: f64,
    /// Maximum per-node reduction-object size (logical bytes).
    pub max_obj_bytes: u64,
    /// Number of passes the application made over the data.
    pub passes: usize,
    /// Machine type of the repository nodes.
    pub repo_machine: String,
    /// Machine type of the compute nodes.
    pub compute_machine: String,
}

impl Profile {
    /// Extract a profile from a middleware execution report.
    pub fn from_report(report: &ExecutionReport) -> Profile {
        Profile {
            app: report.app.clone(),
            data_nodes: report.data_nodes,
            compute_nodes: report.compute_nodes,
            wan_bw: report.wan_bw,
            dataset_bytes: report.dataset_bytes,
            t_disk: report.t_disk().as_secs_f64(),
            t_network: report.t_network().as_secs_f64(),
            t_compute: report.t_compute().as_secs_f64(),
            t_ro: report.t_ro().as_secs_f64(),
            t_g: report.t_g().as_secs_f64(),
            max_obj_bytes: report.max_obj_bytes(),
            passes: report.num_passes(),
            repo_machine: report.repo_machine.clone(),
            compute_machine: report.compute_machine.clone(),
        }
    }

    /// Extract a profile directly from an execution trace, so the
    /// breakdown the predictor consumes is provably the measured span
    /// record rather than hand-summed report fields.
    ///
    /// Component sums are integer-nanosecond [`Trace::component_sum`]s
    /// converted to seconds once at the end — the same arithmetic as
    /// [`Profile::from_report`] on the report of the run that emitted
    /// the trace, so the two profiles are identical bit for bit.
    pub fn from_trace(trace: &Trace) -> Result<Profile, String> {
        let meta = trace.meta.as_ref().ok_or("trace has no run meta")?;
        let passes = trace.passes();
        if passes.is_empty() {
            return Err("trace has no pass spans".to_string());
        }
        let t_disk =
            trace.component_sum(SpanKind::Retrieval) + trace.component_sum(SpanKind::CacheDisk);
        let t_network =
            trace.component_sum(SpanKind::Network) + trace.component_sum(SpanKind::CacheNetwork);
        let t_ro = trace.component_sum(SpanKind::Gather);
        let t_g = trace.component_sum(SpanKind::GlobalReduce);
        let t_compute = trace.component_sum(SpanKind::Compute) + t_ro + t_g;
        Ok(Profile {
            app: meta.app.clone(),
            data_nodes: meta.data_nodes,
            compute_nodes: meta.compute_nodes,
            wan_bw: meta.wan_bw,
            dataset_bytes: meta.dataset_bytes,
            t_disk: t_disk.as_secs_f64(),
            t_network: t_network.as_secs_f64(),
            t_compute: t_compute.as_secs_f64(),
            t_ro: t_ro.as_secs_f64(),
            t_g: t_g.as_secs_f64(),
            max_obj_bytes: passes.iter().filter_map(|p| p.attr("max_obj_bytes")).max().unwrap_or(0),
            passes: passes.len(),
            repo_machine: meta.repo_machine.clone(),
            compute_machine: meta.compute_machine.clone(),
        })
    }

    /// Total profile execution time.
    pub fn total(&self) -> f64 {
        self.t_disk + self.t_network + self.t_compute
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_middleware::PassReport;
    use fg_sim::SimDuration;

    #[test]
    fn from_report_copies_breakdown() {
        let report = ExecutionReport {
            app: "kmeans".into(),
            dataset: "d".into(),
            dataset_bytes: 1_000_000,
            data_nodes: 2,
            compute_nodes: 4,
            wan_bw: 5e5,
            repo_machine: "p".into(),
            compute_machine: "q".into(),
            cache_mode: fg_middleware::report::CacheMode::Local,
            passes: vec![PassReport {
                retrieval: SimDuration::from_secs(10),
                network: SimDuration::from_secs(4),
                cache_disk: SimDuration::ZERO,
                cache_network: SimDuration::ZERO,
                local_compute: SimDuration::from_secs(30),
                t_ro: SimDuration::from_secs(1),
                t_g: SimDuration::from_secs(2),
                max_obj_bytes: 512,
                ..PassReport::default()
            }],
        };
        let p = Profile::from_report(&report);
        assert_eq!(p.t_disk, 10.0);
        assert_eq!(p.t_network, 4.0);
        assert_eq!(p.t_compute, 33.0); // local + ro + g
        assert_eq!(p.t_ro, 1.0);
        assert_eq!(p.t_g, 2.0);
        assert_eq!(p.max_obj_bytes, 512);
        assert_eq!(p.total(), 47.0);
        assert_eq!(p.passes, 1);
    }
}
