//! The pluggable prediction seam: a [`Predictor`] trait every ranking,
//! placement, admission, and migration call site prices deployments
//! through, with the paper's closed-form model as the default impl.
//!
//! The paper's `T_exec = T_disk + T_net + T_comp` model is one point in
//! a design space: Vazhkudai & Schopf show regression over observed
//! transfer histories beating analytical bandwidth models, and the
//! Seneviratne taxonomy frames analytical and learned predictors as
//! interchangeable components of one prediction system. This module is
//! that interchange point. [`AnalyticalPredictor`] delegates to
//! [`try_predict_deployment`], so the default path is bit-identical to
//! the pre-trait concrete calls by construction; learned predictors
//! (the `fg-learn` crate) implement the same contract and additionally
//! consume [`Observation`]s fed back by the scheduler on every clean
//! job completion.
//!
//! # Determinism contract
//!
//! Implementations must be pure functions of their internal state: the
//! same state and arguments must yield bit-identical [`Prediction`]s.
//! State may only change through [`Predictor::observe`], and any change
//! that can alter a future prediction must bump [`Predictor::epoch`] —
//! downstream caches (the scheduler's placement engine memoizes whole
//! rankings) use the epoch to invalidate, so a stale epoch means stale
//! placements, silently. Wall clocks and unseeded randomness are
//! forbidden for the same reason they are everywhere else in this
//! repository.

use crate::classes::AppClasses;
use crate::hetero::ScalingFactors;
use crate::model::Prediction;
use crate::profile::Profile;
use crate::selection::{try_predict_deployment, SelectionError};
use fg_cluster::DeploymentRef;
use std::collections::HashMap;

/// One labelled sample from a completed job: the target tuple the
/// prediction was made for, what was predicted, and what was observed.
///
/// The scheduler builds one per *clean* completion — no preemptions, no
/// mid-run migration, no feedback suppression — mirroring the accuracy
/// ledger's sampling rule, and feeds it to the active predictor when
/// [`Predictor::wants_observations`] is set. Components are ordered
/// `[disk, network, compute]` in seconds, like the ledger's samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Application name (the profile's `app`).
    pub app: String,
    /// Repository (replica site) the job streamed from.
    pub repo: String,
    /// Data-host nodes in the placed configuration.
    pub data_nodes: usize,
    /// Compute nodes in the placed configuration.
    pub compute_nodes: usize,
    /// Per-stream WAN bandwidth the prediction was priced at, bytes/s.
    pub wan_bw: f64,
    /// Dataset size, bytes.
    pub dataset_bytes: u64,
    /// Predicted `[disk, network, compute]` times, seconds — what the
    /// *active* predictor said at placement time.
    pub predicted: [f64; 3],
    /// Observed `[disk, network, compute]` times, seconds.
    pub observed: [f64; 3],
}

/// A pluggable execution-time predictor for candidate deployments.
///
/// The contract mirrors [`try_predict_deployment`]: price one
/// `(replica, site, configuration)` candidate for `profile`'s
/// application at `dataset_bytes`, or explain why it cannot be priced.
/// Implementations must uphold the module-level determinism contract.
pub trait Predictor: Send + Sync + std::fmt::Debug {
    /// A short stable name for figures and diagnostics.
    fn name(&self) -> &'static str;

    /// Predict the execution-time breakdown of one candidate
    /// deployment, or return the same typed rejection the analytical
    /// path would (degenerate targets and unknown machines are
    /// unpredictable under *any* model — there is nothing to learn
    /// from a target that validation refuses).
    fn predict_deployment(
        &self,
        profile: &Profile,
        classes: AppClasses,
        d: DeploymentRef<'_>,
        dataset_bytes: u64,
        factors: &HashMap<String, ScalingFactors>,
    ) -> Result<Prediction, SelectionError>;

    /// Monotone state-version counter. Must change whenever internal
    /// state changes in a way that can alter a future prediction;
    /// callers cache rankings keyed on it. Stateless predictors keep
    /// the default constant `0`.
    fn epoch(&self) -> u64 {
        0
    }

    /// Whether the scheduler should feed this predictor completion
    /// [`Observation`]s. Stateless predictors leave this `false` so
    /// the default path does no per-completion work.
    fn wants_observations(&self) -> bool {
        false
    }

    /// Fold one completed-job observation into internal state. Takes
    /// `&self` so trained predictors can live behind an `Arc` shared
    /// between a scheduler core and its snapshots; implementations use
    /// interior mutability and must bump [`Predictor::epoch`] if the
    /// observation changed anything.
    fn observe(&self, _obs: &Observation) {}
}

/// The paper's closed-form model behind the [`Predictor`] seam.
///
/// Delegates to [`try_predict_deployment`] verbatim, so every caller
/// refactored onto the trait produces bit-identical predictions,
/// rankings, and schedules when this (the default) predictor is
/// active. Stateless: `epoch` is constant and observations are
/// declined.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalyticalPredictor;

impl Predictor for AnalyticalPredictor {
    fn name(&self) -> &'static str {
        "analytical"
    }

    fn predict_deployment(
        &self,
        profile: &Profile,
        classes: AppClasses,
        d: DeploymentRef<'_>,
        dataset_bytes: u64,
        factors: &HashMap<String, ScalingFactors>,
    ) -> Result<Prediction, SelectionError> {
        try_predict_deployment(profile, classes, d, dataset_bytes, factors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};

    fn profile() -> Profile {
        Profile {
            app: "kmeans".into(),
            data_nodes: 1,
            compute_nodes: 1,
            wan_bw: 1e6,
            dataset_bytes: 1_000_000,
            t_disk: 40.0,
            t_network: 20.0,
            t_compute: 100.0,
            t_ro: 0.0,
            t_g: 0.5,
            max_obj_bytes: 512,
            passes: 1,
            repo_machine: "pentium-700".into(),
            compute_machine: "pentium-700".into(),
        }
    }

    #[test]
    fn analytical_impl_is_bit_identical_to_the_concrete_path() {
        let repo = RepositorySite::pentium_repository("osu", 8);
        let site = ComputeSite::pentium_myrinet("cs", 16);
        let factors = HashMap::new();
        let pred = AnalyticalPredictor;
        for &(n, c) in &[(1usize, 1usize), (1, 2), (2, 4), (4, 8), (8, 16)] {
            for &bw in &[1e5, 8e5, 1e6, 4e6] {
                for &bytes in &[1u64 << 20, 200 << 20, 3200 << 20] {
                    let d = Deployment::new(
                        repo.clone(),
                        site.clone(),
                        Wan::per_stream(bw),
                        Configuration::new(n, c),
                    );
                    let concrete = try_predict_deployment(
                        &profile(),
                        AppClasses::CONSTANT_LINEAR_CONSTANT,
                        d.as_ref(),
                        bytes,
                        &factors,
                    )
                    .unwrap();
                    let via_trait = pred
                        .predict_deployment(
                            &profile(),
                            AppClasses::CONSTANT_LINEAR_CONSTANT,
                            d.as_ref(),
                            bytes,
                            &factors,
                        )
                        .unwrap();
                    assert_eq!(concrete.t_disk.to_bits(), via_trait.t_disk.to_bits());
                    assert_eq!(concrete.t_network.to_bits(), via_trait.t_network.to_bits());
                    assert_eq!(concrete.t_compute.to_bits(), via_trait.t_compute.to_bits());
                }
            }
        }
    }

    #[test]
    fn analytical_impl_propagates_typed_rejections() {
        let repo = RepositorySite::pentium_repository("osu", 8);
        let site = ComputeSite::pentium_myrinet("cs", 16);
        let d = Deployment::new(repo, site, Wan::per_stream(1e6), Configuration::new(1, 1));
        let err = AnalyticalPredictor
            .predict_deployment(
                &profile(),
                AppClasses::CONSTANT_LINEAR_CONSTANT,
                d.as_ref(),
                0,
                &HashMap::new(),
            )
            .unwrap_err();
        assert!(matches!(err, SelectionError::Unpredictable { .. }));
    }

    #[test]
    fn analytical_impl_is_stateless() {
        let pred = AnalyticalPredictor;
        assert_eq!(pred.epoch(), 0);
        assert!(!pred.wants_observations());
        pred.observe(&Observation {
            app: "kmeans".into(),
            repo: "osu".into(),
            data_nodes: 1,
            compute_nodes: 1,
            wan_bw: 1e6,
            dataset_bytes: 1 << 20,
            predicted: [1.0, 2.0, 3.0],
            observed: [1.5, 2.5, 3.5],
        });
        assert_eq!(pred.epoch(), 0);
        assert_eq!(pred.name(), "analytical");
    }
}
