//! Experimentally determining the interconnect parameters.
//!
//! §3.3.1: "`w` and `l` are experimentally determined bandwidth and
//! latency for the target processing configuration". Rather than reading
//! them off the site description, this module measures them the way an
//! operator would: time reduction-object transfers of several sizes and
//! fit `T = l + w * r` by ordinary least squares. The fit also serves as
//! a sanity check that gather timings really are affine in the object
//! size (the model's assumption), via the reported R².

use crate::model::InterconnectParams;
use serde::{Deserialize, Serialize};

/// One gather-timing observation: object size (bytes) and transfer time
/// (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GatherSample {
    /// Reduction-object size, bytes.
    pub bytes: f64,
    /// Measured per-object transfer time, seconds.
    pub seconds: f64,
}

/// The fitted affine model `T = latency + bytes / bandwidth`, with fit
/// quality.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterconnectFit {
    /// The fitted parameters.
    pub params: InterconnectParams,
    /// Coefficient of determination of the fit (1 = perfectly affine).
    pub r_squared: f64,
}

/// Least-squares fit of `seconds = l + w * bytes`. Needs at least two
/// distinct object sizes; panics otherwise (an experiment bug, not a
/// runtime condition).
pub fn fit_interconnect(samples: &[GatherSample]) -> InterconnectFit {
    assert!(samples.len() >= 2, "need at least two gather samples");
    let n = samples.len() as f64;
    let mean_x = samples.iter().map(|s| s.bytes).sum::<f64>() / n;
    let mean_y = samples.iter().map(|s| s.seconds).sum::<f64>() / n;
    let sxx: f64 = samples.iter().map(|s| (s.bytes - mean_x).powi(2)).sum();
    assert!(sxx > 0.0, "gather samples must span at least two distinct object sizes");
    let sxy: f64 = samples.iter().map(|s| (s.bytes - mean_x) * (s.seconds - mean_y)).sum();
    let w = sxy / sxx; // seconds per byte
    let l = mean_y - w * mean_x;
    let ss_tot: f64 = samples.iter().map(|s| (s.seconds - mean_y).powi(2)).sum();
    let ss_res: f64 = samples.iter().map(|s| (s.seconds - (l + w * s.bytes)).powi(2)).sum();
    let r_squared = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 };
    assert!(w > 0.0, "fitted a non-positive wire time per byte: {w}");
    InterconnectFit {
        params: InterconnectParams { bandwidth: 1.0 / w, latency: l.max(0.0) },
        r_squared,
    }
}

/// Calibrate a compute site by timing synthetic gathers on the simulated
/// interconnect — the measurement campaign §3.3.1 presupposes. Object
/// sizes sweep from 1 KB to ~16 MB in powers of four.
pub fn calibrate_site(site: &fg_cluster::ComputeSite) -> InterconnectFit {
    let samples: Vec<GatherSample> = (0..8)
        .map(|i| {
            let bytes = 1_024u64 << (2 * i);
            let t = fg_middleware::comm::gather_time(site, &[bytes]);
            GatherSample { bytes: bytes as f64, seconds: t.as_secs_f64() }
        })
        .collect();
    fit_interconnect(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_cluster::ComputeSite;

    #[test]
    fn exact_affine_data_recovers_parameters() {
        // T = 0.01 + bytes / 1e8
        let samples: Vec<GatherSample> = [1e3, 1e5, 1e6, 1e7]
            .iter()
            .map(|&b| GatherSample { bytes: b, seconds: 0.01 + b / 1e8 })
            .collect();
        let fit = fit_interconnect(&samples);
        assert!((fit.params.latency - 0.01).abs() < 1e-9);
        assert!((fit.params.bandwidth - 1e8).abs() / 1e8 < 1e-9);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn noisy_data_still_fits_closely() {
        let samples: Vec<GatherSample> = (1..20)
            .map(|i| {
                let b = i as f64 * 1e5;
                let noise = if i % 2 == 0 { 1.001 } else { 0.999 };
                GatherSample { bytes: b, seconds: (0.005 + b / 5e7) * noise }
            })
            .collect();
        let fit = fit_interconnect(&samples);
        assert!((fit.params.latency - 0.005).abs() < 5e-4);
        assert!((fit.params.bandwidth - 5e7).abs() / 5e7 < 0.02);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn calibration_recovers_the_site_parameters() {
        let site = ComputeSite::pentium_myrinet("cal", 16);
        let fit = calibrate_site(&site);
        // The simulated gather is exactly affine, so the fit must recover
        // the site's configured parameters to high precision.
        assert!(
            (fit.params.bandwidth - site.interconnect_bw).abs() / site.interconnect_bw < 1e-6,
            "bandwidth {} vs {}",
            fit.params.bandwidth,
            site.interconnect_bw
        );
        let l = site.costs.gather_latency.as_secs_f64();
        assert!((fit.params.latency - l).abs() < 1e-6);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    #[should_panic(expected = "two distinct object sizes")]
    fn identical_sizes_rejected() {
        fit_interconnect(&[
            GatherSample { bytes: 10.0, seconds: 1.0 },
            GatherSample { bytes: 10.0, seconds: 2.0 },
        ]);
    }

    #[test]
    #[should_panic(expected = "at least two gather samples")]
    fn single_sample_rejected() {
        fit_interconnect(&[GatherSample { bytes: 10.0, seconds: 1.0 }]);
    }
}
