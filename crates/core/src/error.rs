//! The evaluation metric of §5:
//! `E = |T_exact - T_predicted| / T_exact`.

/// Relative prediction error. Panics on a non-positive exact time — a
/// measurement of zero means the experiment itself is broken.
pub fn relative_error(exact: f64, predicted: f64) -> f64 {
    assert!(exact > 0.0, "exact execution time must be positive, got {exact}");
    (exact - predicted).abs() / exact
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_prediction_is_zero_error() {
        assert_eq!(relative_error(10.0, 10.0), 0.0);
    }

    #[test]
    fn error_is_symmetric_in_direction() {
        assert!((relative_error(10.0, 12.0) - 0.2).abs() < 1e-12);
        assert!((relative_error(10.0, 8.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_exact_rejected() {
        relative_error(0.0, 1.0);
    }
}
