//! Mid-run replica re-selection: §3's allocation loop, re-entered when
//! the WAN misbehaves.
//!
//! The paper selects a (replica, configuration) pair once, up front,
//! from predicted execution times. Under fault injection the premise of
//! that choice can collapse mid-run — a degradation window throttles
//! the chosen replica's WAN path, or its repository loses nodes. The
//! [`ReselectionController`] closes the loop: it feeds every observed
//! per-pass bandwidth into a [`BandwidthEstimator`](crate::bandwidth),
//! and when the estimate deviates from the replica's nominal bandwidth
//! by more than a threshold, it re-ranks the surviving candidate
//! replicas via [`rank_deployments`] — substituting the *estimated*
//! bandwidth for every candidate using the degraded path — and migrates
//! if another replica now wins by a clear margin.
//!
//! The margin is hysteresis: predictions are approximate, so flapping
//! between near-equal replicas would pay migration overhead for noise.

use crate::bandwidth::BandwidthEstimator;
use crate::classes::AppClasses;
use crate::hetero::ScalingFactors;
use crate::predictor::{AnalyticalPredictor, Predictor};
use crate::profile::Profile;
use crate::selection::try_rank_deployments_with;
use fg_cluster::Deployment;
use fg_middleware::{PassAction, PassController, PassObservation};
use std::collections::HashMap;
use std::sync::Arc;

/// A [`PassController`] that re-runs replica selection when observed
/// bandwidth drifts from the current replica's nominal value.
pub struct ReselectionController {
    profile: Profile,
    classes: AppClasses,
    replicas: Vec<Deployment>,
    dataset_bytes: u64,
    factors: HashMap<String, ScalingFactors>,
    estimator: Box<dyn BandwidthEstimator>,
    predictor: Arc<dyn Predictor>,
    deviation_threshold: f64,
    improvement_margin: f64,
    migrations: usize,
}

impl ReselectionController {
    /// A controller choosing among `replicas` (each a full candidate
    /// deployment; all must share the running compute site). Re-ranking
    /// triggers when `|estimate - nominal| / nominal` exceeds 25%, and a
    /// challenger must predict at least 10% cheaper than the current
    /// replica to win; tune with [`Self::with_thresholds`].
    pub fn new(
        profile: Profile,
        classes: AppClasses,
        replicas: Vec<Deployment>,
        dataset_bytes: u64,
        factors: HashMap<String, ScalingFactors>,
        estimator: Box<dyn BandwidthEstimator>,
    ) -> ReselectionController {
        assert!(!replicas.is_empty(), "re-selection needs candidate replicas");
        ReselectionController {
            profile,
            classes,
            replicas,
            dataset_bytes,
            factors,
            estimator,
            predictor: Arc::new(AnalyticalPredictor),
            deviation_threshold: 0.25,
            improvement_margin: 0.10,
            migrations: 0,
        }
    }

    /// Re-rank candidates through `pred` instead of the default
    /// [`AnalyticalPredictor`].
    pub fn with_predictor(mut self, pred: Arc<dyn Predictor>) -> ReselectionController {
        self.predictor = pred;
        self
    }

    /// Override the deviation trigger and the migration hysteresis
    /// margin (both relative, `>= 0`).
    pub fn with_thresholds(mut self, deviation: f64, margin: f64) -> ReselectionController {
        assert!(deviation >= 0.0 && margin >= 0.0);
        self.deviation_threshold = deviation;
        self.improvement_margin = margin;
        self
    }

    /// Remove a replica whose repository has failed from the candidate
    /// set (it will never be migrated to).
    pub fn mark_dead(&mut self, repository_name: &str) {
        self.replicas.retain(|d| d.repository.name != repository_name);
    }

    /// How many migrations this controller has requested.
    pub fn migrations(&self) -> usize {
        self.migrations
    }
}

impl PassController for ReselectionController {
    fn after_pass(&mut self, obs: &PassObservation, current: &Deployment) -> PassAction {
        // Cached passes see no WAN traffic: nothing to learn, nothing to
        // gain from moving.
        let Some(bw) = obs.observed_wan_bw else {
            return PassAction::Continue;
        };
        self.estimator.observe(bw);
        if obs.finished {
            return PassAction::Continue;
        }
        let nominal = current.wan.stream_bw;
        let estimate = self.estimator.estimate();
        if nominal <= 0.0 || (estimate - nominal).abs() / nominal <= self.deviation_threshold {
            return PassAction::Continue;
        }

        // Re-rank with the estimated achievable bandwidth substituted on
        // every candidate that would ride the degraded path.
        let adjusted: Vec<Deployment> = self
            .replicas
            .iter()
            .map(|d| {
                let mut d = d.clone();
                if d.repository.name == current.repository.name {
                    d.wan.stream_bw = estimate;
                }
                d
            })
            .collect();
        let ranked = try_rank_deployments_with(
            self.predictor.as_ref(),
            &self.profile,
            self.classes,
            &adjusted,
            self.dataset_bytes,
            &self.factors,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        let best = &ranked[0];
        if best.deployment.repository.name == current.repository.name {
            return PassAction::Continue;
        }
        let current_cost = ranked
            .iter()
            .find(|cand| cand.deployment.repository.name == current.repository.name)
            .map(|cand| cand.cost());
        match current_cost {
            Some(cur) if best.cost() < cur * (1.0 - self.improvement_margin) => {
                self.migrations += 1;
                // Migrate to the winner at its *nominal* description —
                // the estimate belongs to the path we are leaving.
                let target = self
                    .replicas
                    .iter()
                    .find(|d| d.repository.name == best.deployment.repository.name)
                    .expect("winner came from the candidate set")
                    .clone();
                PassAction::Migrate(Box::new(target))
            }
            _ => PassAction::Continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::LastValue;
    use fg_cluster::{ComputeSite, Configuration, RepositorySite, Wan};
    use fg_sim::SimTime;

    fn profile() -> Profile {
        Profile {
            app: "kmeans".into(),
            data_nodes: 1,
            compute_nodes: 1,
            wan_bw: 1e6,
            dataset_bytes: 1_000_000,
            t_disk: 40.0,
            t_network: 20.0,
            t_compute: 100.0,
            t_ro: 0.0,
            t_g: 0.5,
            max_obj_bytes: 512,
            passes: 1,
            repo_machine: "pentium-700".into(),
            compute_machine: "pentium-700".into(),
        }
    }

    fn replica(repo_name: &str, wan_bw: f64) -> Deployment {
        Deployment::new(
            RepositorySite::pentium_repository(repo_name, 8),
            ComputeSite::pentium_myrinet("cs", 16),
            Wan::per_stream(wan_bw),
            Configuration::new(2, 4),
        )
    }

    fn controller() -> ReselectionController {
        ReselectionController::new(
            profile(),
            AppClasses::CONSTANT_LINEAR_CONSTANT,
            vec![replica("primary", 1e6), replica("backup", 8e5)],
            1_000_000,
            HashMap::new(),
            Box::new(LastValue::default()),
        )
    }

    fn obs(pass_idx: usize, bw: Option<f64>) -> PassObservation {
        PassObservation {
            pass_idx,
            elapsed: SimTime::ZERO,
            remote: bw.is_some(),
            observed_wan_bw: bw,
            finished: false,
        }
    }

    #[test]
    fn nominal_bandwidth_never_triggers_migration() {
        let mut c = controller();
        let cur = replica("primary", 1e6);
        for i in 0..5 {
            assert!(matches!(c.after_pass(&obs(i, Some(1e6)), &cur), PassAction::Continue));
        }
        assert_eq!(c.migrations(), 0);
    }

    #[test]
    fn collapsed_bandwidth_migrates_to_the_healthy_replica() {
        let mut c = controller();
        let cur = replica("primary", 1e6);
        // Primary's path collapses to a tenth of nominal: the backup's
        // slower-but-honest 0.8 MB/s now predicts cheaper.
        let action = c.after_pass(&obs(0, Some(1e5)), &cur);
        match action {
            PassAction::Migrate(d) => {
                assert_eq!(d.repository.name, "backup");
                // Nominal description, not the degraded estimate.
                assert_eq!(d.wan.stream_bw, 8e5);
            }
            PassAction::Continue => panic!("expected migration"),
        }
        assert_eq!(c.migrations(), 1);
    }

    #[test]
    fn small_deviation_stays_put() {
        // 10% down is inside the 25% deviation band.
        let mut c = controller();
        let cur = replica("primary", 1e6);
        assert!(matches!(c.after_pass(&obs(0, Some(9e5)), &cur), PassAction::Continue));
    }

    #[test]
    fn hysteresis_margin_blocks_marginal_wins() {
        // Degraded enough to trigger re-ranking, but the backup's
        // prediction is not 10% better: stay.
        let mut c = ReselectionController::new(
            profile(),
            AppClasses::CONSTANT_LINEAR_CONSTANT,
            vec![replica("primary", 1e6), replica("backup", 8e5)],
            1_000_000,
            HashMap::new(),
            Box::new(LastValue::default()),
        )
        .with_thresholds(0.25, 10.0); // absurd margin: nothing ever wins
        let cur = replica("primary", 1e6);
        assert!(matches!(c.after_pass(&obs(0, Some(1e5)), &cur), PassAction::Continue));
        assert_eq!(c.migrations(), 0);
    }

    #[test]
    fn dead_replicas_are_not_candidates() {
        let mut c = controller();
        c.mark_dead("backup");
        let cur = replica("primary", 1e6);
        // Even a collapsed path has nowhere better to go.
        assert!(matches!(c.after_pass(&obs(0, Some(1e5)), &cur), PassAction::Continue));
    }

    #[test]
    fn cached_passes_are_ignored() {
        let mut c = controller();
        let cur = replica("primary", 1e6);
        assert!(matches!(c.after_pass(&obs(1, None), &cur), PassAction::Continue));
    }

    /// Run a controller against a stream of observed bandwidths the way
    /// a scheduler feeding back load-degraded transfer rates would:
    /// every observation lands on whichever replica is current, and a
    /// `Migrate` switches the current replica before the next sample.
    fn drive(mut c: ReselectionController, samples: &[f64]) -> usize {
        let mut current = replica("primary", 1e6);
        for (i, &bw) in samples.iter().enumerate() {
            if let PassAction::Migrate(d) = c.after_pass(&obs(i, Some(bw)), &current) {
                current = *d;
            }
        }
        c.migrations()
    }

    #[test]
    fn hysteresis_prevents_flapping_between_near_equal_replicas() {
        // Two replicas whose nominal paths differ by ~10%: under a load
        // oscillating the observed bandwidth between 0.85 and 0.95 MB/s,
        // each sample flips which replica predicts cheapest — but only
        // by a percent or two, squarely inside the noise band.
        let replicas = vec![replica("primary", 1e6), replica("backup", 9e5)];
        let samples: Vec<f64> = (0..12).map(|i| if i % 2 == 0 { 8.5e5 } else { 9.5e5 }).collect();
        // A zero deviation threshold re-ranks on every sample (the
        // scheduler-feedback regime); with no margin the controller
        // chases every flip and flaps between the replicas.
        let eager = ReselectionController::new(
            profile(),
            AppClasses::CONSTANT_LINEAR_CONSTANT,
            replicas.clone(),
            1_000_000,
            HashMap::new(),
            Box::new(LastValue::default()),
        )
        .with_thresholds(0.0, 0.0);
        assert!(
            drive(eager, &samples) >= 3,
            "margin-free controller should flap on alternating samples"
        );
        // The default 10% improvement margin absorbs the oscillation:
        // no candidate ever wins by enough to justify moving.
        let damped = ReselectionController::new(
            profile(),
            AppClasses::CONSTANT_LINEAR_CONSTANT,
            replicas,
            1_000_000,
            HashMap::new(),
            Box::new(LastValue::default()),
        )
        .with_thresholds(0.0, 0.10);
        assert_eq!(drive(damped, &samples), 0, "hysteresis must hold placement steady");
    }
}
