//! The component predictors (§3.2–§3.3).

use crate::classes::{AppClasses, GlobalReduceClass, RObjSizeClass};
use crate::profile::Profile;
use fg_cluster::ComputeSite;
use serde::{Deserialize, Serialize};

/// The configuration a prediction targets: `(n̂, ĉ, b̂, ŝ)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Target {
    /// Storage nodes, `n̂`.
    pub data_nodes: usize,
    /// Compute nodes, `ĉ`.
    pub compute_nodes: usize,
    /// Per-data-node WAN bandwidth, `b̂` (bytes/sec).
    pub wan_bw: f64,
    /// Dataset size, `ŝ` (logical bytes).
    pub dataset_bytes: u64,
}

/// Why a [`Target`] cannot be predicted for.
///
/// The scaling models divide by every one of the target's components, so
/// a zero anywhere produces infinities, NaNs, or (for `compute_nodes`)
/// an integer underflow in the gather model rather than an obviously
/// wrong number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetError {
    /// `data_nodes == 0`: the disk and network models divide by `n̂`.
    NoDataNodes,
    /// `compute_nodes == 0`: the compute model divides by `ĉ` and the
    /// gather model counts `ĉ - 1` senders.
    NoComputeNodes,
    /// `wan_bw` is zero, negative, or non-finite: the network model
    /// divides by `b̂`.
    InvalidBandwidth,
    /// `dataset_bytes == 0`: every size ratio collapses and downstream
    /// consumers divide by `ŝ`.
    EmptyDataset,
}

impl std::fmt::Display for TargetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TargetError::NoDataNodes => write!(f, "target has no data nodes"),
            TargetError::NoComputeNodes => write!(f, "target has no compute nodes"),
            TargetError::InvalidBandwidth => {
                write!(f, "target WAN bandwidth must be finite and positive")
            }
            TargetError::EmptyDataset => write!(f, "target dataset is empty"),
        }
    }
}

impl std::error::Error for TargetError {}

impl Target {
    /// Validated constructor: every component must be non-degenerate.
    pub fn new(
        data_nodes: usize,
        compute_nodes: usize,
        wan_bw: f64,
        dataset_bytes: u64,
    ) -> Result<Target, TargetError> {
        let t = Target { data_nodes, compute_nodes, wan_bw, dataset_bytes };
        t.validate()?;
        Ok(t)
    }

    /// Check every component for degeneracy.
    pub fn validate(&self) -> Result<(), TargetError> {
        if self.data_nodes == 0 {
            return Err(TargetError::NoDataNodes);
        }
        if self.compute_nodes == 0 {
            return Err(TargetError::NoComputeNodes);
        }
        if !self.wan_bw.is_finite() || self.wan_bw <= 0.0 {
            return Err(TargetError::InvalidBandwidth);
        }
        if self.dataset_bytes == 0 {
            return Err(TargetError::EmptyDataset);
        }
        Ok(())
    }

    /// The target that reproduces the profile configuration itself.
    pub fn of_profile(p: &Profile) -> Target {
        Target {
            data_nodes: p.data_nodes,
            compute_nodes: p.compute_nodes,
            wan_bw: p.wan_bw,
            dataset_bytes: p.dataset_bytes,
        }
    }
}

/// The experimentally determined interconnect parameters of the target
/// processing configuration: `T_ro = w * r + l` per object.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterconnectParams {
    /// Interconnect bandwidth, bytes/sec (`1/w`).
    pub bandwidth: f64,
    /// Per-message latency, seconds (`l`).
    pub latency: f64,
}

impl InterconnectParams {
    /// Read the parameters from a compute-site description.
    pub fn of_site(site: &ComputeSite) -> InterconnectParams {
        InterconnectParams {
            bandwidth: site.interconnect_bw,
            latency: site.costs.gather_latency.as_secs_f64(),
        }
    }
}

/// The three compute-time models of §5.1, in increasing fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ComputeModel {
    /// Scale `t_c` assuming linear speedup; ignore communication.
    NoComm,
    /// Additionally model the reduction-object communication (§3.3.1).
    ReductionComm,
    /// Additionally model the global reduction (§3.3.2).
    GlobalReduction,
}

impl ComputeModel {
    /// All three, in presentation order.
    pub const ALL: [ComputeModel; 3] =
        [ComputeModel::NoComm, ComputeModel::ReductionComm, ComputeModel::GlobalReduction];

    /// Label used in figures.
    pub fn label(&self) -> &'static str {
        match self {
            ComputeModel::NoComm => "no communication",
            ComputeModel::ReductionComm => "reduction communication",
            ComputeModel::GlobalReduction => "global reduction",
        }
    }
}

/// A predicted execution-time breakdown (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted data retrieval time.
    pub t_disk: f64,
    /// Predicted network communication time.
    pub t_network: f64,
    /// Predicted processing time (inclusive of `t_ro` and `t_g` when the
    /// model accounts for them).
    pub t_compute: f64,
}

impl Prediction {
    /// `T_exec = T_disk + T_network + T_compute`.
    pub fn total(&self) -> f64 {
        self.t_disk + self.t_network + self.t_compute
    }
}

/// Predicted data retrieval time:
/// `T̂_disk = (ŝ/s) * (n/n̂) * t_d`.
pub fn predict_disk(p: &Profile, t: &Target) -> f64 {
    let s_ratio = t.dataset_bytes as f64 / p.dataset_bytes as f64;
    let n_ratio = p.data_nodes as f64 / t.data_nodes as f64;
    s_ratio * n_ratio * p.t_disk
}

/// Predicted data communication time:
/// `T̂_network = (ŝ/s) * (n/n̂) * (b/b̂) * t_n`.
pub fn predict_network(p: &Profile, t: &Target) -> f64 {
    let s_ratio = t.dataset_bytes as f64 / p.dataset_bytes as f64;
    let n_ratio = p.data_nodes as f64 / t.data_nodes as f64;
    let b_ratio = p.wan_bw / t.wan_bw;
    s_ratio * n_ratio * b_ratio * p.t_network
}

/// Predicted per-node reduction-object size `ρ̂` under the class model.
pub fn predict_obj_bytes(p: &Profile, t: &Target, class: RObjSizeClass) -> f64 {
    let rho = p.max_obj_bytes as f64;
    match class {
        RObjSizeClass::Constant => rho,
        RObjSizeClass::Linear => {
            rho * (t.dataset_bytes as f64 / p.dataset_bytes as f64)
                * (p.compute_nodes as f64 / t.compute_nodes as f64)
        }
    }
}

/// Predicted reduction-object communication time: a serialized gather of
/// `ĉ - 1` objects, each costing `l + w * ρ̂`, once per pass.
pub fn predict_t_ro(p: &Profile, t: &Target, class: RObjSizeClass, ic: &InterconnectParams) -> f64 {
    let rho = predict_obj_bytes(p, t, class);
    // `saturating_sub`: a degenerate ĉ = 0 target must not underflow to
    // 2^64 - 1 senders (callers validate, but this model is also used
    // directly).
    let senders = t.compute_nodes.saturating_sub(1) as f64;
    p.passes as f64 * senders * (ic.latency + rho / ic.bandwidth)
}

/// Predicted global reduction time under the class model.
pub fn predict_t_g(p: &Profile, t: &Target, class: GlobalReduceClass) -> f64 {
    match class {
        GlobalReduceClass::LinearConstant => {
            p.t_g * (t.compute_nodes as f64 / p.compute_nodes as f64)
        }
        GlobalReduceClass::ConstantLinear => {
            p.t_g * (t.dataset_bytes as f64 / p.dataset_bytes as f64)
        }
    }
}

/// Predicted data processing time under the chosen compute model.
pub fn predict_compute(
    p: &Profile,
    t: &Target,
    model: ComputeModel,
    classes: AppClasses,
    ic: &InterconnectParams,
) -> f64 {
    let s_ratio = t.dataset_bytes as f64 / p.dataset_bytes as f64;
    let c_ratio = p.compute_nodes as f64 / t.compute_nodes as f64;
    match model {
        ComputeModel::NoComm => s_ratio * c_ratio * p.t_compute,
        ComputeModel::ReductionComm => {
            let scalable = (p.t_compute - p.t_ro).max(0.0);
            s_ratio * c_ratio * scalable + predict_t_ro(p, t, classes.obj, ic)
        }
        ComputeModel::GlobalReduction => {
            let scalable = (p.t_compute - p.t_ro - p.t_g).max(0.0);
            s_ratio * c_ratio * scalable
                + predict_t_ro(p, t, classes.obj, ic)
                + predict_t_g(p, t, classes.global)
        }
    }
}

/// The assembled predictor: profile + classes + interconnect + model.
///
/// ```
/// use fg_predict::{AppClasses, ComputeModel, ExecTimePredictor,
///                  InterconnectParams, Profile, Target};
///
/// // Summary information from a 1-1 profile run.
/// let profile = Profile {
///     app: "kmeans".into(),
///     data_nodes: 1, compute_nodes: 1,
///     wan_bw: 40e6, dataset_bytes: 1_400_000_000,
///     t_disk: 56.0, t_network: 35.0, t_compute: 1444.0,
///     t_ro: 0.0, t_g: 0.02, max_obj_bytes: 584, passes: 10,
///     repo_machine: "pentium-700".into(),
///     compute_machine: "pentium-700".into(),
/// };
/// let predictor = ExecTimePredictor {
///     profile,
///     classes: AppClasses::for_app("kmeans"),
///     interconnect: InterconnectParams { bandwidth: 100e6, latency: 0.015 },
///     model: ComputeModel::GlobalReduction,
/// };
/// // Predict an 8-data-node, 16-compute-node deployment on twice the data.
/// let p = predictor.predict(&Target {
///     data_nodes: 8, compute_nodes: 16,
///     wan_bw: 40e6, dataset_bytes: 2_800_000_000,
/// });
/// assert!(p.t_disk < 56.0);            // eight storage nodes
/// assert!(p.t_compute < 1444.0);       // sixteen compute nodes
/// assert!(p.total() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ExecTimePredictor {
    /// Profile summary information.
    pub profile: Profile,
    /// Application classes (given or inferred).
    pub classes: AppClasses,
    /// Interconnect parameters of the target processing configuration.
    pub interconnect: InterconnectParams,
    /// Compute model fidelity.
    pub model: ComputeModel,
}

impl ExecTimePredictor {
    /// Predict the execution-time breakdown for a target configuration.
    ///
    /// # Panics
    ///
    /// Panics if the target is degenerate (see [`Target::validate`]);
    /// use [`ExecTimePredictor::try_predict`] to handle that as an error.
    pub fn predict(&self, target: &Target) -> Prediction {
        match self.try_predict(target) {
            Ok(p) => p,
            Err(e) => panic!("cannot predict for degenerate target: {e}"),
        }
    }

    /// Fallible prediction: rejects degenerate targets instead of
    /// returning infinities or NaNs.
    pub fn try_predict(&self, target: &Target) -> Result<Prediction, TargetError> {
        target.validate()?;
        Ok(Prediction {
            t_disk: predict_disk(&self.profile, target),
            t_network: predict_network(&self.profile, target),
            t_compute: predict_compute(
                &self.profile,
                target,
                self.model,
                self.classes,
                &self.interconnect,
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn profile() -> Profile {
        Profile {
            app: "t".into(),
            data_nodes: 2,
            compute_nodes: 4,
            wan_bw: 1e6,
            dataset_bytes: 1_000_000,
            t_disk: 40.0,
            t_network: 20.0,
            t_compute: 100.0,
            t_ro: 6.0,
            t_g: 10.0,
            max_obj_bytes: 1_000,
            passes: 2,
            repo_machine: "m".into(),
            compute_machine: "m".into(),
        }
    }

    fn ic() -> InterconnectParams {
        InterconnectParams { bandwidth: 1e6, latency: 0.5 }
    }

    #[test]
    fn disk_scales_with_size_and_nodes() {
        let p = profile();
        // Double data on four times the storage nodes: half the time.
        let t = Target { data_nodes: 8, compute_nodes: 8, wan_bw: 1e6, dataset_bytes: 2_000_000 };
        assert!((predict_disk(&p, &t) - 40.0 * 2.0 * (2.0 / 8.0)).abs() < 1e-12);
    }

    #[test]
    fn network_scales_with_bandwidth_too() {
        let p = profile();
        let t = Target { data_nodes: 2, compute_nodes: 4, wan_bw: 5e5, dataset_bytes: 1_000_000 };
        // Half the bandwidth: twice the time.
        assert!((predict_network(&p, &t) - 40.0).abs() < 1e-12);
    }

    #[test]
    fn identity_target_reproduces_profile_for_scalable_components() {
        let p = profile();
        let t = Target::of_profile(&p);
        assert!((predict_disk(&p, &t) - p.t_disk).abs() < 1e-12);
        assert!((predict_network(&p, &t) - p.t_network).abs() < 1e-12);
        let classes = AppClasses::CONSTANT_LINEAR_CONSTANT;
        // NoComm is exactly t_c at the identity target.
        assert!(
            (predict_compute(&p, &t, ComputeModel::NoComm, classes, &ic()) - p.t_compute).abs()
                < 1e-12
        );
        // GlobalReduction reproduces t_g exactly; t_ro via the synthetic
        // interconnect model: 2 passes * 3 senders * (0.5 + 0.001) = 3.006.
        let full = predict_compute(&p, &t, ComputeModel::GlobalReduction, classes, &ic());
        let expected = (100.0 - 6.0 - 10.0) + 2.0 * 3.0 * (0.5 + 1e-3) + 10.0;
        assert!((full - expected).abs() < 1e-9, "{full} vs {expected}");
    }

    #[test]
    fn obj_size_classes() {
        let p = profile();
        let t = Target { data_nodes: 2, compute_nodes: 8, wan_bw: 1e6, dataset_bytes: 4_000_000 };
        assert_eq!(predict_obj_bytes(&p, &t, RObjSizeClass::Constant), 1_000.0);
        // Linear: rho * (s ratio 4) * (c ratio 4/8) = 2000.
        assert_eq!(predict_obj_bytes(&p, &t, RObjSizeClass::Linear), 2_000.0);
    }

    #[test]
    fn t_g_classes() {
        let p = profile();
        let t = Target { data_nodes: 2, compute_nodes: 16, wan_bw: 1e6, dataset_bytes: 3_000_000 };
        assert!((predict_t_g(&p, &t, GlobalReduceClass::LinearConstant) - 40.0).abs() < 1e-12);
        assert!((predict_t_g(&p, &t, GlobalReduceClass::ConstantLinear) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn single_node_target_has_no_gather() {
        let p = profile();
        let t = Target { data_nodes: 1, compute_nodes: 1, wan_bw: 1e6, dataset_bytes: 1_000_000 };
        assert_eq!(predict_t_ro(&p, &t, RObjSizeClass::Constant, &ic()), 0.0);
    }

    #[test]
    fn models_are_ordered_by_what_they_account_for() {
        // At large c the NoComm model must under-predict relative to the
        // fuller models, because t_ro and t_g do not shrink with c.
        let p = profile();
        let t = Target { data_nodes: 2, compute_nodes: 16, wan_bw: 1e6, dataset_bytes: 1_000_000 };
        let classes = AppClasses::CONSTANT_LINEAR_CONSTANT;
        let nc = predict_compute(&p, &t, ComputeModel::NoComm, classes, &ic());
        let rc = predict_compute(&p, &t, ComputeModel::ReductionComm, classes, &ic());
        let gr = predict_compute(&p, &t, ComputeModel::GlobalReduction, classes, &ic());
        assert!(nc < rc, "{nc} vs {rc}");
        assert!(rc < gr, "{rc} vs {gr}");
    }

    #[test]
    fn target_validation_rejects_every_degenerate_component() {
        assert_eq!(Target::new(0, 4, 1e6, 1), Err(TargetError::NoDataNodes));
        assert_eq!(Target::new(2, 0, 1e6, 1), Err(TargetError::NoComputeNodes));
        assert_eq!(Target::new(2, 4, 0.0, 1), Err(TargetError::InvalidBandwidth));
        assert_eq!(Target::new(2, 4, -1e6, 1), Err(TargetError::InvalidBandwidth));
        assert_eq!(Target::new(2, 4, f64::NAN, 1), Err(TargetError::InvalidBandwidth));
        assert_eq!(Target::new(2, 4, f64::INFINITY, 1), Err(TargetError::InvalidBandwidth));
        assert_eq!(Target::new(2, 4, 1e6, 0), Err(TargetError::EmptyDataset));
        assert!(Target::new(2, 4, 1e6, 1).is_ok());
    }

    #[test]
    fn t_ro_does_not_underflow_on_zero_compute_nodes() {
        // Regression: `compute_nodes - 1` underflowed to usize::MAX and
        // predicted ~1.8e19 senders.
        let p = profile();
        let t = Target { data_nodes: 1, compute_nodes: 0, wan_bw: 1e6, dataset_bytes: 1_000_000 };
        assert_eq!(predict_t_ro(&p, &t, RObjSizeClass::Constant, &ic()), 0.0);
    }

    #[test]
    fn try_predict_rejects_degenerate_targets() {
        let predictor = ExecTimePredictor {
            profile: profile(),
            classes: AppClasses::CONSTANT_LINEAR_CONSTANT,
            interconnect: ic(),
            model: ComputeModel::GlobalReduction,
        };
        let bad = Target { data_nodes: 0, compute_nodes: 4, wan_bw: 1e6, dataset_bytes: 1 };
        assert_eq!(predictor.try_predict(&bad), Err(TargetError::NoDataNodes));
        let good = Target::of_profile(&predictor.profile);
        let p = predictor.try_predict(&good).expect("valid target");
        assert!(p.total().is_finite());
    }

    #[test]
    #[should_panic(expected = "degenerate target")]
    fn predict_panics_loudly_instead_of_returning_infinity() {
        let predictor = ExecTimePredictor {
            profile: profile(),
            classes: AppClasses::CONSTANT_LINEAR_CONSTANT,
            interconnect: ic(),
            model: ComputeModel::GlobalReduction,
        };
        predictor.predict(&Target {
            data_nodes: 2,
            compute_nodes: 4,
            wan_bw: 0.0,
            dataset_bytes: 1_000_000,
        });
    }

    #[test]
    fn predictor_assembles_components() {
        let p = profile();
        let predictor = ExecTimePredictor {
            profile: p.clone(),
            classes: AppClasses::CONSTANT_LINEAR_CONSTANT,
            interconnect: ic(),
            model: ComputeModel::NoComm,
        };
        let t = Target::of_profile(&p);
        let pred = predictor.predict(&t);
        assert!((pred.total() - p.total()).abs() < 1e-9);
    }

    proptest! {
        /// Monotonicity: more of any resource never predicts more time;
        /// more data never predicts less.
        #[test]
        fn predictions_are_monotone(
            n1 in 1usize..16, n2 in 1usize..16,
            c_extra in 0usize..16,
            bw1 in 1e5f64..1e7, bw2 in 1e5f64..1e7,
            s1 in 1u64..100, s2 in 1u64..100,
        ) {
            let p = profile();
            let mk = |n: usize, bw: f64, s: u64| Target {
                data_nodes: n,
                compute_nodes: n + c_extra,
                wan_bw: bw,
                dataset_bytes: s * 1_000_000,
            };
            // More storage nodes, same everything else.
            let (lo, hi) = (n1.min(n2), n1.max(n2));
            prop_assert!(
                predict_disk(&p, &mk(hi, bw1, s1)) <= predict_disk(&p, &mk(lo, bw1, s1)) + 1e-9
            );
            // More bandwidth.
            let (b_lo, b_hi) = (bw1.min(bw2), bw1.max(bw2));
            prop_assert!(
                predict_network(&p, &mk(n1, b_hi, s1))
                    <= predict_network(&p, &mk(n1, b_lo, s1)) + 1e-9
            );
            // More data.
            let (s_lo, s_hi) = (s1.min(s2), s1.max(s2));
            let classes = AppClasses::LINEAR_CONSTANT_LINEAR;
            prop_assert!(
                predict_compute(&p, &mk(n1, bw1, s_lo), ComputeModel::GlobalReduction, classes, &ic())
                    <= predict_compute(&p, &mk(n1, bw1, s_hi), ComputeModel::GlobalReduction, classes, &ic())
                        + 1e-9
            );
        }

        /// The gather cost grows with the node count for constant objects
        /// and stays bounded for linear objects at fixed s.
        #[test]
        fn gather_scaling_by_class(c in 2usize..64) {
            let p = profile();
            let t1 = Target { data_nodes: 1, compute_nodes: c, wan_bw: 1e6, dataset_bytes: 1_000_000 };
            let t2 = Target { data_nodes: 1, compute_nodes: c * 2, wan_bw: 1e6, dataset_bytes: 1_000_000 };
            let constant_growth = predict_t_ro(&p, &t2, RObjSizeClass::Constant, &ic())
                / predict_t_ro(&p, &t1, RObjSizeClass::Constant, &ic());
            // Constant objects: gather roughly doubles with c.
            prop_assert!((constant_growth - (2 * c - 1) as f64 / (c - 1) as f64).abs() < 1e-9);
        }
    }
}
