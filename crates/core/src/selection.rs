//! Resource and replica selection (§3's allocation problem).
//!
//! "We are given a dataset, which is replicated at `r` sites. We have
//! also identified `c` different computing configurations ... Our goal is
//! to choose a replica and computing configuration pair where the data
//! processing can be performed with the minimum cost." The selector
//! predicts every candidate deployment's execution time and ranks them.

use crate::cache::{predict_plan_components, CachePlan};
use crate::classes::AppClasses;
use crate::hetero::ScalingFactors;
use crate::model::{ComputeModel, InterconnectParams, Prediction, Target, TargetError};
use crate::profile::Profile;
use fg_cluster::{Deployment, DeploymentRef};
use std::collections::HashMap;

/// One evaluated deployment alternative.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The deployment.
    pub deployment: Deployment,
    /// Its predicted execution-time breakdown.
    pub predicted: Prediction,
}

impl Candidate {
    /// Predicted total cost.
    pub fn cost(&self) -> f64 {
        self.predicted.total()
    }
}

/// Why a deployment could not be ranked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectionError {
    /// The deployment's configuration yields a degenerate [`Target`]
    /// (zero nodes, non-positive bandwidth, empty dataset); its cost
    /// would be infinite or NaN and the ranking meaningless. The label
    /// identifies the offending deployment.
    Unpredictable {
        /// `Deployment::label()` of the rejected candidate.
        label: String,
        /// The underlying target validation failure.
        cause: TargetError,
    },
    /// The deployment's compute machine differs from the profile
    /// cluster and `factors` has no entry for it — predicting across
    /// hardware without measured factors is exactly what §3.4 says not
    /// to do.
    MissingFactors {
        /// The unknown compute-machine type.
        machine: String,
        /// The profile cluster's machine type.
        profile_machine: String,
    },
}

impl std::fmt::Display for SelectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectionError::Unpredictable { label, cause } => {
                write!(f, "deployment {label:?} is not predictable: {cause}")
            }
            SelectionError::MissingFactors { machine, profile_machine } => {
                write!(
                    f,
                    "no scaling factors for machine type {machine:?} \
                     (profile cluster is {profile_machine:?})"
                )
            }
        }
    }
}

impl std::error::Error for SelectionError {}

/// Predict every candidate deployment and return them ranked cheapest
/// first (ties broken by deployment label, deterministically), or the
/// first [`SelectionError`] encountered in `deployments` order.
///
/// `factors` maps a compute-machine type name to the scaling factors
/// from the profile cluster to that machine type; deployments whose
/// machine matches the profile's need no entry (identity is assumed).
/// This is the entry point for callers that enumerate deployments from
/// external descriptions — a multi-tenant scheduler must skip a
/// misconfigured site, not crash on it.
pub fn try_rank_deployments(
    profile: &Profile,
    classes: AppClasses,
    deployments: &[Deployment],
    dataset_bytes: u64,
    factors: &HashMap<String, ScalingFactors>,
) -> Result<Vec<Candidate>, SelectionError> {
    try_rank_deployments_with(
        &crate::predictor::AnalyticalPredictor,
        profile,
        classes,
        deployments,
        dataset_bytes,
        factors,
    )
}

/// [`try_rank_deployments`] generalized over the pricing model: every
/// candidate is priced through `pred` instead of the closed-form
/// analytical path. With [`AnalyticalPredictor`] this is bit-identical
/// to [`try_rank_deployments`] (which is implemented on top of it).
///
/// [`AnalyticalPredictor`]: crate::predictor::AnalyticalPredictor
pub fn try_rank_deployments_with<P: crate::predictor::Predictor + ?Sized>(
    pred: &P,
    profile: &Profile,
    classes: AppClasses,
    deployments: &[Deployment],
    dataset_bytes: u64,
    factors: &HashMap<String, ScalingFactors>,
) -> Result<Vec<Candidate>, SelectionError> {
    let mut out = Vec::with_capacity(deployments.len());
    for d in deployments {
        let predicted =
            pred.predict_deployment(profile, classes, d.as_ref(), dataset_bytes, factors)?;
        out.push(Candidate { deployment: d.clone(), predicted });
    }
    out.sort_by(|a, b| {
        a.cost().total_cmp(&b.cost()).then_with(|| a.deployment.label().cmp(&b.deployment.label()))
    });
    Ok(out)
}

/// Predict one candidate deployment from borrowed parts, allocating
/// nothing on the success path.
///
/// This is the single-candidate core [`try_rank_deployments`] runs per
/// deployment, exposed for hot loops (a scheduler scoring every
/// `(replica, site, configuration)` triple per job) that cannot afford
/// the owned [`Deployment`]'s site clones or the ranking vector. The
/// arithmetic is shared with the ranking path, so the two agree
/// bit-for-bit by construction.
pub fn try_predict_deployment(
    profile: &Profile,
    classes: AppClasses,
    d: DeploymentRef<'_>,
    dataset_bytes: u64,
    factors: &HashMap<String, ScalingFactors>,
) -> Result<Prediction, SelectionError> {
    let target =
        Target::new(d.config.data_nodes, d.config.compute_nodes, d.stream_bw, dataset_bytes)
            .map_err(|cause| SelectionError::Unpredictable { label: d.label(), cause })?;
    // Storage-aware: deployments that cannot cache locally are costed
    // under their non-local-cache or refetch plan.
    let plan = CachePlan::for_candidate(
        d.compute,
        d.cache,
        d.config.compute_nodes,
        dataset_bytes,
        profile.passes,
    );
    let interconnect = InterconnectParams::of_site(d.compute);
    let base = predict_plan_components(
        profile,
        classes,
        &interconnect,
        ComputeModel::GlobalReduction,
        &target,
        &plan,
        d.compute.machine.disk_bw,
    );
    let machine = &d.compute.machine.name;
    if *machine == profile.compute_machine {
        Ok(base)
    } else {
        let f = factors.get(machine).ok_or_else(|| SelectionError::MissingFactors {
            machine: machine.clone(),
            profile_machine: profile.compute_machine.clone(),
        })?;
        Ok(f.apply(&base))
    }
}

/// Like [`try_rank_deployments`], but panics on any [`SelectionError`] —
/// the original API, for callers whose candidate sets are known-valid by
/// construction.
pub fn rank_deployments(
    profile: &Profile,
    classes: AppClasses,
    deployments: &[Deployment],
    dataset_bytes: u64,
    factors: &HashMap<String, ScalingFactors>,
) -> Vec<Candidate> {
    try_rank_deployments(profile, classes, deployments, dataset_bytes, factors)
        .unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_cluster::{ComputeSite, Configuration, RepositorySite, Wan};

    fn profile() -> Profile {
        Profile {
            app: "kmeans".into(),
            data_nodes: 1,
            compute_nodes: 1,
            wan_bw: 1e6,
            dataset_bytes: 1_000_000,
            t_disk: 40.0,
            t_network: 20.0,
            t_compute: 100.0,
            t_ro: 0.0,
            t_g: 0.5,
            max_obj_bytes: 512,
            passes: 1,
            repo_machine: "pentium-700".into(),
            compute_machine: "pentium-700".into(),
        }
    }

    fn deployments() -> Vec<Deployment> {
        let repo = RepositorySite::pentium_repository("osu", 8);
        let site = ComputeSite::pentium_myrinet("cs", 16);
        let wan = Wan::per_stream(1e6);
        [(1, 1), (2, 4), (8, 16)]
            .iter()
            .map(|&(n, c)| {
                Deployment::new(repo.clone(), site.clone(), wan.clone(), Configuration::new(n, c))
            })
            .collect()
    }

    #[test]
    fn bigger_configurations_win_for_scalable_work() {
        let ranked = rank_deployments(
            &profile(),
            AppClasses::CONSTANT_LINEAR_CONSTANT,
            &deployments(),
            1_000_000,
            &HashMap::new(),
        );
        assert_eq!(ranked.len(), 3);
        assert_eq!(ranked[0].deployment.config.label(), "8-16");
        assert_eq!(ranked[2].deployment.config.label(), "1-1");
        assert!(ranked[0].cost() <= ranked[1].cost());
        assert!(ranked[1].cost() <= ranked[2].cost());
    }

    #[test]
    fn slow_wan_replica_loses_to_fast_one() {
        let repo_near = RepositorySite::pentium_repository("near", 8);
        let repo_far = RepositorySite::pentium_repository("far", 8);
        let site = ComputeSite::pentium_myrinet("cs", 16);
        let cfg = Configuration::new(2, 4);
        let ds = vec![
            Deployment::new(repo_far, site.clone(), Wan::per_stream(1e5), cfg),
            Deployment::new(repo_near, site, Wan::per_stream(1e6), cfg),
        ];
        let ranked = rank_deployments(
            &profile(),
            AppClasses::CONSTANT_LINEAR_CONSTANT,
            &ds,
            1_000_000,
            &HashMap::new(),
        );
        assert_eq!(ranked[0].deployment.repository.name, "near");
    }

    #[test]
    fn cross_cluster_candidates_use_factors() {
        let repo = RepositorySite::pentium_repository("osu", 8);
        let fast_site = ComputeSite::opteron_infiniband("fast", 16);
        let slow_site = ComputeSite::pentium_myrinet("slow", 16);
        let cfg = Configuration::new(1, 1);
        let wan = Wan::per_stream(1e6);
        let ds = vec![
            Deployment::new(repo.clone(), slow_site, wan.clone(), cfg),
            Deployment::new(repo, fast_site, wan, cfg),
        ];
        let mut factors = HashMap::new();
        factors.insert(
            "opteron-2400".to_string(),
            ScalingFactors { disk: 0.4, network: 1.0, compute: 0.3 },
        );
        let ranked = rank_deployments(
            &profile(),
            AppClasses::CONSTANT_LINEAR_CONSTANT,
            &ds,
            1_000_000,
            &factors,
        );
        assert_eq!(ranked[0].deployment.compute.name, "fast");
        // 0.4*40 + 1.0*20 + 0.3*~100.5
        assert!((ranked[0].cost() - (16.0 + 20.0 + 0.3 * 100.5)).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "not predictable")]
    fn degenerate_deployment_is_rejected_not_ranked() {
        // Regression: a zero-byte dataset used to flow straight into the
        // scaling models and rank every candidate at NaN cost.
        rank_deployments(
            &profile(),
            AppClasses::CONSTANT_LINEAR_CONSTANT,
            &deployments(),
            0,
            &HashMap::new(),
        );
    }

    #[test]
    #[should_panic(expected = "no scaling factors")]
    fn unknown_machine_without_factors_panics() {
        let repo = RepositorySite::pentium_repository("osu", 8);
        let site = ComputeSite::opteron_infiniband("fast", 16);
        let ds = vec![Deployment::new(repo, site, Wan::per_stream(1e6), Configuration::new(1, 1))];
        rank_deployments(
            &profile(),
            AppClasses::CONSTANT_LINEAR_CONSTANT,
            &ds,
            1_000_000,
            &HashMap::new(),
        );
    }

    #[test]
    fn try_rank_reports_degenerate_deployments_instead_of_panicking() {
        let err = try_rank_deployments(
            &profile(),
            AppClasses::CONSTANT_LINEAR_CONSTANT,
            &deployments(),
            0,
            &HashMap::new(),
        )
        .unwrap_err();
        match err {
            SelectionError::Unpredictable { ref label, cause } => {
                assert_eq!(label, "cs@osu 1-1");
                assert_eq!(cause, crate::model::TargetError::EmptyDataset);
            }
            other => panic!("expected Unpredictable, got {other:?}"),
        }
        assert!(err.to_string().contains("not predictable"));
    }

    #[test]
    fn try_rank_reports_missing_factors_instead_of_panicking() {
        let repo = RepositorySite::pentium_repository("osu", 8);
        let site = ComputeSite::opteron_infiniband("fast", 16);
        let ds = vec![Deployment::new(repo, site, Wan::per_stream(1e6), Configuration::new(1, 1))];
        let err = try_rank_deployments(
            &profile(),
            AppClasses::CONSTANT_LINEAR_CONSTANT,
            &ds,
            1_000_000,
            &HashMap::new(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            SelectionError::MissingFactors {
                machine: "opteron-2400".into(),
                profile_machine: "pentium-700".into(),
            }
        );
    }

    #[test]
    fn try_rank_matches_the_panicking_wrapper_on_valid_input() {
        let ranked = rank_deployments(
            &profile(),
            AppClasses::CONSTANT_LINEAR_CONSTANT,
            &deployments(),
            1_000_000,
            &HashMap::new(),
        );
        let tried = try_rank_deployments(
            &profile(),
            AppClasses::CONSTANT_LINEAR_CONSTANT,
            &deployments(),
            1_000_000,
            &HashMap::new(),
        )
        .unwrap();
        assert_eq!(ranked.len(), tried.len());
        for (a, b) in ranked.iter().zip(tried.iter()) {
            assert_eq!(a.deployment.label(), b.deployment.label());
            assert_eq!(a.cost(), b.cost());
        }
    }
}
