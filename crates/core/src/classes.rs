//! Reduction-object size and global-reduction time classes (§3.3).
//!
//! "Our experience with reduction computations shows that almost all
//! applications fall into one of the two classes" — for the object size
//! and, independently, for the global reduction time. The class can be
//! supplied by the application writer or inferred by comparing two or
//! more profile runs.
//!
//! Semantics (refined from the paper, which models the aggregate):
//! classes describe the **per-node** reduction object. A *constant*
//! object (k-means' centroid accumulators, kNN's k-best lists) depends
//! only on application parameters. A *linear* object (EM's diagnostics,
//! vortex/defect feature lists) is proportional to the node's data share
//! `s / c`. The aggregate the master receives therefore grows linearly
//! in the dataset for the linear class and linearly in the node count for
//! the constant class — both gathers cost `(c-1) * (l + w * rho)`.

use crate::profile::Profile;
use serde::{Deserialize, Serialize};

/// How the per-node reduction-object size scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RObjSizeClass {
    /// Independent of dataset size and node count.
    Constant,
    /// Proportional to the node's data share `s / c`.
    Linear,
}

/// How the global reduction time scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GlobalReduceClass {
    /// `T_g` scales linearly with the number of processing nodes and is
    /// independent of dataset size (k-means, kNN, apriori).
    LinearConstant,
    /// `T_g` is independent of the node count and linear in the dataset
    /// size (EM, vortex, defect).
    ConstantLinear,
}

/// The pair of classes describing one application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppClasses {
    /// Reduction-object size class.
    pub obj: RObjSizeClass,
    /// Global-reduction time class.
    pub global: GlobalReduceClass,
}

impl AppClasses {
    /// The classification the paper uses for k-means and kNN search.
    pub const CONSTANT_LINEAR_CONSTANT: AppClasses =
        AppClasses { obj: RObjSizeClass::Constant, global: GlobalReduceClass::LinearConstant };

    /// The classification the paper uses for vortex detection, molecular
    /// defect detection, and EM clustering.
    pub const LINEAR_CONSTANT_LINEAR: AppClasses =
        AppClasses { obj: RObjSizeClass::Linear, global: GlobalReduceClass::ConstantLinear };

    /// The documented classification for each built-in application.
    pub fn for_app(app: &str) -> AppClasses {
        match app {
            "kmeans" | "knn" | "apriori" | "ann" => AppClasses::CONSTANT_LINEAR_CONSTANT,
            "em" | "vortex" | "defect" => AppClasses::LINEAR_CONSTANT_LINEAR,
            other => panic!("unknown application {other:?}: supply classes explicitly"),
        }
    }

    /// Infer both classes "by analyzing multiple profile runs": for every
    /// informative profile pair, compare the observed scaling of the
    /// object size (and of `T_g`) against each class's predicted scaling
    /// and vote for the closer one (in log space). Returns `None` when no
    /// pair distinguishes the classes (e.g. all profiles share one
    /// configuration and dataset size).
    pub fn infer(profiles: &[Profile]) -> Option<AppClasses> {
        let mut obj_votes = (0usize, 0usize); // (constant, linear)
        let mut g_votes = (0usize, 0usize); // (linear-constant, constant-linear)
        for (i, a) in profiles.iter().enumerate() {
            for b in profiles.iter().skip(i + 1) {
                let s_ratio = b.dataset_bytes as f64 / a.dataset_bytes as f64;
                let c_ratio = b.compute_nodes as f64 / a.compute_nodes as f64;

                // Object size: constant predicts 1, linear predicts s/c.
                let lin_pred = s_ratio / c_ratio;
                if a.max_obj_bytes > 0 && b.max_obj_bytes > 0 && distinct(1.0, lin_pred) {
                    let observed = b.max_obj_bytes as f64 / a.max_obj_bytes as f64;
                    if log_dist(observed, 1.0) <= log_dist(observed, lin_pred) {
                        obj_votes.0 += 1;
                    } else {
                        obj_votes.1 += 1;
                    }
                }

                // Global reduction: linear-constant predicts c, constant-
                // linear predicts s.
                if a.t_g > 0.0 && b.t_g > 0.0 && distinct(c_ratio, s_ratio) {
                    let observed = b.t_g / a.t_g;
                    if log_dist(observed, c_ratio) <= log_dist(observed, s_ratio) {
                        g_votes.0 += 1;
                    } else {
                        g_votes.1 += 1;
                    }
                }
            }
        }
        if obj_votes == (0, 0) || g_votes == (0, 0) {
            return None;
        }
        Some(AppClasses {
            obj: if obj_votes.0 >= obj_votes.1 {
                RObjSizeClass::Constant
            } else {
                RObjSizeClass::Linear
            },
            global: if g_votes.0 >= g_votes.1 {
                GlobalReduceClass::LinearConstant
            } else {
                GlobalReduceClass::ConstantLinear
            },
        })
    }
}

fn log_dist(a: f64, b: f64) -> f64 {
    (a.ln() - b.ln()).abs()
}

/// Are two predicted ratios far enough apart to discriminate?
fn distinct(a: f64, b: f64) -> bool {
    log_dist(a, b) > 0.2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(c: usize, s: u64, obj: u64, t_g: f64) -> Profile {
        Profile {
            app: "t".into(),
            data_nodes: 1,
            compute_nodes: c,
            wan_bw: 1e6,
            dataset_bytes: s,
            t_disk: 1.0,
            t_network: 1.0,
            t_compute: 10.0,
            t_ro: 0.1,
            t_g,
            max_obj_bytes: obj,
            passes: 1,
            repo_machine: "m".into(),
            compute_machine: "m".into(),
        }
    }

    #[test]
    fn documented_classes() {
        assert_eq!(AppClasses::for_app("kmeans"), AppClasses::CONSTANT_LINEAR_CONSTANT);
        assert_eq!(AppClasses::for_app("vortex"), AppClasses::LINEAR_CONSTANT_LINEAR);
        assert_eq!(AppClasses::for_app("em").obj, RObjSizeClass::Linear);
    }

    #[test]
    #[should_panic(expected = "unknown application")]
    fn unknown_app_panics() {
        AppClasses::for_app("mystery");
    }

    #[test]
    fn infers_constant_linear_constant() {
        // Object size stays fixed while s and c vary; t_g tracks c.
        let profiles = vec![
            profile(1, 1_000, 256, 0.5),
            profile(4, 1_000, 256, 2.0),
            profile(4, 4_000, 256, 2.0),
        ];
        let got = AppClasses::infer(&profiles).unwrap();
        assert_eq!(got, AppClasses::CONSTANT_LINEAR_CONSTANT);
    }

    #[test]
    fn infers_linear_constant_linear() {
        // Object size tracks s/c; t_g tracks s.
        let profiles = vec![
            profile(1, 1_000, 1_000, 1.0),
            profile(4, 1_000, 250, 1.0),
            profile(1, 4_000, 4_000, 4.0),
        ];
        let got = AppClasses::infer(&profiles).unwrap();
        assert_eq!(got, AppClasses::LINEAR_CONSTANT_LINEAR);
    }

    #[test]
    fn identical_profiles_are_uninformative() {
        let profiles = vec![profile(2, 1_000, 64, 1.0), profile(2, 1_000, 64, 1.0)];
        assert_eq!(AppClasses::infer(&profiles), None);
    }

    #[test]
    fn single_profile_is_uninformative() {
        assert_eq!(AppClasses::infer(&[profile(1, 1_000, 64, 1.0)]), None);
    }

    #[test]
    fn equal_s_and_c_scaling_cannot_separate_tg() {
        // s and c scale by the same factor: t_g votes are skipped, and
        // with no other pair the inference must decline to answer.
        let profiles = vec![profile(2, 2_000, 64, 1.0), profile(4, 4_000, 64, 2.0)];
        assert_eq!(AppClasses::infer(&profiles), None);
    }
}
