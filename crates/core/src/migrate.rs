//! Migration cost/benefit model: is moving a checkpointed run worth it?
//!
//! [`ReselectionController`](crate::ReselectionController) answers
//! *where* a run should be — it re-ranks replicas when observed
//! bandwidth drifts. This module answers whether moving there pays:
//! migration is not free. The checkpointed reduction objects must cross
//! a link (`checkpoint_size · ŵ + l`, the paper's per-object
//! interconnect model applied to the snapshot), and the destination
//! replica must redo the remaining fraction of the run's retrieval and
//! WAN transfer — `T̂_disk`/`T̂_network` scaled by the unprocessed share:
//!
//! ```text
//! T̂_migrate = checkpoint_bytes · ŵ + l + f_rem · (T̂_disk + T̂_network)
//! ```
//!
//! [`MigrationPolicy`] stacks this gate on top of a
//! [`ReselectionController`](crate::ReselectionController): the
//! controller's deviation threshold and improvement margin provide the
//! hysteresis (no flapping between near-equal replicas), and a migration
//! verdict only survives if the predicted time on the candidate *plus*
//! `T̂_migrate` still beats staying put on the degraded path.

use crate::bandwidth::BandwidthEstimator;
use crate::classes::AppClasses;
use crate::hetero::ScalingFactors;
use crate::model::{InterconnectParams, Prediction};
use crate::predictor::{AnalyticalPredictor, Predictor};
use crate::profile::Profile;
use crate::reselect::ReselectionController;
use fg_cluster::Deployment;
use fg_middleware::{PassAction, PassController, PassObservation};
use std::collections::HashMap;
use std::sync::Arc;

/// The components of `T̂_migrate` (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationCost {
    /// Checkpoint transfer: `checkpoint_bytes · ŵ` at the link's
    /// bandwidth.
    pub checkpoint_transfer: f64,
    /// Per-message latency `l` of the link.
    pub latency: f64,
    /// Restart I/O: the remaining fraction of the destination's
    /// predicted `T̂_disk + T̂_network` (work the move redoes or had
    /// deferred, now priced at the destination).
    pub restart: f64,
}

impl MigrationCost {
    /// `T̂_migrate`: the sum of the components.
    pub fn total(&self) -> f64 {
        self.checkpoint_transfer + self.latency + self.restart
    }
}

/// Price a migration: the checkpoint crosses `link`, and the
/// `destination` prediction's I/O components are redone for the
/// `remaining_fraction` of the run (clamped to `[0, 1]`).
pub fn migration_cost(
    checkpoint_bytes: u64,
    link: &InterconnectParams,
    destination: &Prediction,
    remaining_fraction: f64,
) -> MigrationCost {
    let f = remaining_fraction.clamp(0.0, 1.0);
    MigrationCost {
        checkpoint_transfer: checkpoint_bytes as f64 / link.bandwidth,
        latency: link.latency,
        restart: f * (destination.t_disk + destination.t_network),
    }
}

/// A priced stay-vs-move comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationDecision {
    /// Predicted time to completion if the run stays where it is
    /// (remaining fraction at the observed, degraded bandwidth).
    pub stay: f64,
    /// Predicted time to completion if it moves: `T̂_migrate` plus the
    /// remaining compute on the candidate.
    pub migrate: f64,
    /// The migration-cost breakdown behind `migrate`.
    pub cost: MigrationCost,
}

impl MigrationDecision {
    /// Whether moving beats staying by at least `margin` (relative).
    pub fn worthwhile(&self, margin: f64) -> bool {
        self.migrate < self.stay * (1.0 - margin)
    }
}

/// Compare staying (predicted `stay_remaining` seconds to completion)
/// against migrating to a candidate whose full-run prediction is
/// `candidate`: the move pays `T̂_migrate` and then the remaining
/// fraction of the candidate's compute.
pub fn decide_migration(
    stay_remaining: f64,
    candidate: &Prediction,
    remaining_fraction: f64,
    checkpoint_bytes: u64,
    link: &InterconnectParams,
) -> MigrationDecision {
    let f = remaining_fraction.clamp(0.0, 1.0);
    let cost = migration_cost(checkpoint_bytes, link, candidate, f);
    MigrationDecision {
        stay: stay_remaining,
        migrate: cost.total() + f * candidate.t_compute,
        cost,
    }
}

/// A [`PassController`] that gates a [`ReselectionController`]'s
/// migration verdicts with the cost/benefit model.
///
/// The inner controller supplies the trigger (bandwidth-deviation
/// threshold) and the hysteresis (improvement margin); this policy adds
/// `T̂_migrate` — sized from the run's checkpoint — to the challenger's
/// side of the scale, so a replica that merely predicts faster does not
/// win unless it also amortizes the move.
pub struct MigrationPolicy {
    inner: ReselectionController,
    profile: Profile,
    classes: AppClasses,
    dataset_bytes: u64,
    factors: HashMap<String, ScalingFactors>,
    link: InterconnectParams,
    checkpoint_bytes: u64,
    predictor: Arc<dyn Predictor>,
    migrations: usize,
    last_decision: Option<MigrationDecision>,
}

impl MigrationPolicy {
    /// A policy choosing among `replicas`, with the checkpoint payload
    /// (`checkpoint_bytes`) crossing `link` on every move. Thresholds
    /// are the [`ReselectionController`] defaults; tune with
    /// [`MigrationPolicy::with_thresholds`].
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        profile: Profile,
        classes: AppClasses,
        replicas: Vec<Deployment>,
        dataset_bytes: u64,
        factors: HashMap<String, ScalingFactors>,
        estimator: Box<dyn BandwidthEstimator>,
        link: InterconnectParams,
        checkpoint_bytes: u64,
    ) -> MigrationPolicy {
        let inner = ReselectionController::new(
            profile.clone(),
            classes,
            replicas,
            dataset_bytes,
            factors.clone(),
            estimator,
        );
        MigrationPolicy {
            inner,
            profile,
            classes,
            dataset_bytes,
            factors,
            link,
            checkpoint_bytes,
            predictor: Arc::new(AnalyticalPredictor),
            migrations: 0,
            last_decision: None,
        }
    }

    /// Override the inner controller's deviation trigger and hysteresis
    /// margin.
    pub fn with_thresholds(mut self, deviation: f64, margin: f64) -> MigrationPolicy {
        self.inner = self.inner.with_thresholds(deviation, margin);
        self
    }

    /// Price both sides of the stay-vs-move scale (and the inner
    /// controller's re-ranking) through `pred` instead of the default
    /// [`AnalyticalPredictor`].
    pub fn with_predictor(mut self, pred: Arc<dyn Predictor>) -> MigrationPolicy {
        self.inner = self.inner.with_predictor(Arc::clone(&pred));
        self.predictor = pred;
        self
    }

    /// Remove a failed replica from the candidate set.
    pub fn mark_dead(&mut self, repository_name: &str) {
        self.inner.mark_dead(repository_name);
    }

    /// Migrations this policy has approved (the inner controller may
    /// have proposed more; the cost gate vetoed the difference).
    pub fn migrations(&self) -> usize {
        self.migrations
    }

    /// The stay-vs-move comparison behind the most recent proposal the
    /// inner controller made, approved or vetoed.
    pub fn last_decision(&self) -> Option<&MigrationDecision> {
        self.last_decision.as_ref()
    }

    /// Fraction of the run still ahead after `pass_idx` completes.
    fn remaining_fraction(&self, pass_idx: usize) -> f64 {
        let total = self.profile.passes.max(1) as f64;
        ((total - (pass_idx + 1) as f64) / total).clamp(0.0, 1.0)
    }

    /// Full-run prediction for one deployment, or `None` if it is
    /// degenerate (a policy must skip an unpredictable candidate, not
    /// crash on it).
    fn predict_one(&self, d: &Deployment) -> Option<Prediction> {
        self.predictor
            .predict_deployment(
                &self.profile,
                self.classes,
                d.as_ref(),
                self.dataset_bytes,
                &self.factors,
            )
            .ok()
    }
}

impl PassController for MigrationPolicy {
    fn after_pass(&mut self, obs: &PassObservation, current: &Deployment) -> PassAction {
        let PassAction::Migrate(candidate) = self.inner.after_pass(obs, current) else {
            return PassAction::Continue;
        };
        // The controller wants to move; price the move before agreeing.
        let f = self.remaining_fraction(obs.pass_idx);
        let mut degraded = current.clone();
        if let Some(bw) = obs.observed_wan_bw {
            degraded.wan.stream_bw = bw;
        }
        let (Some(stay_pred), Some(move_pred)) =
            (self.predict_one(&degraded), self.predict_one(&candidate))
        else {
            return PassAction::Continue;
        };
        let decision = decide_migration(
            f * stay_pred.total(),
            &move_pred,
            f,
            self.checkpoint_bytes,
            &self.link,
        );
        self.last_decision = Some(decision);
        if decision.worthwhile(0.0) {
            self.migrations += 1;
            PassAction::Migrate(candidate)
        } else {
            PassAction::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::LastValue;
    use fg_cluster::{ComputeSite, Configuration, RepositorySite, Wan};
    use fg_sim::SimTime;

    fn link() -> InterconnectParams {
        InterconnectParams { bandwidth: 1e6, latency: 0.5 }
    }

    fn prediction() -> Prediction {
        Prediction { t_disk: 40.0, t_network: 20.0, t_compute: 100.0 }
    }

    #[test]
    fn migration_cost_adds_transfer_latency_and_restart() {
        let c = migration_cost(2_000_000, &link(), &prediction(), 0.5);
        assert_eq!(c.checkpoint_transfer, 2.0);
        assert_eq!(c.latency, 0.5);
        assert_eq!(c.restart, 30.0);
        assert_eq!(c.total(), 32.5);
    }

    #[test]
    fn remaining_fraction_is_clamped() {
        let c = migration_cost(0, &link(), &prediction(), 7.0);
        assert_eq!(c.restart, 60.0);
        let c = migration_cost(0, &link(), &prediction(), -1.0);
        assert_eq!(c.restart, 0.0);
    }

    #[test]
    fn decide_migration_weighs_both_sides() {
        // Stay: 200 s left. Move: 32.5 s of migration + half the
        // candidate's compute (50 s) = 82.5 s — clearly worthwhile.
        let d = decide_migration(200.0, &prediction(), 0.5, 2_000_000, &link());
        assert_eq!(d.migrate, 82.5);
        assert!(d.worthwhile(0.0));
        assert!(d.worthwhile(0.5));
        // But not against a 60% improvement demand.
        assert!(!d.worthwhile(0.6));
        // A nearly-done run has nothing left to win.
        let d = decide_migration(2.0, &prediction(), 0.01, 2_000_000, &link());
        assert!(!d.worthwhile(0.0));
    }

    fn profile(passes: usize) -> Profile {
        Profile {
            app: "kmeans".into(),
            data_nodes: 1,
            compute_nodes: 1,
            wan_bw: 1e6,
            dataset_bytes: 1_000_000,
            t_disk: 40.0,
            t_network: 20.0,
            t_compute: 100.0,
            t_ro: 0.0,
            t_g: 0.5,
            max_obj_bytes: 512,
            passes,
            repo_machine: "pentium-700".into(),
            compute_machine: "pentium-700".into(),
        }
    }

    fn replica(repo_name: &str, wan_bw: f64) -> Deployment {
        Deployment::new(
            RepositorySite::pentium_repository(repo_name, 8),
            ComputeSite::pentium_myrinet("cs", 16),
            Wan::per_stream(wan_bw),
            Configuration::new(2, 4),
        )
    }

    fn policy(passes: usize, checkpoint_bytes: u64) -> MigrationPolicy {
        MigrationPolicy::new(
            profile(passes),
            AppClasses::CONSTANT_LINEAR_CONSTANT,
            vec![replica("primary", 1e6), replica("backup", 8e5)],
            1_000_000,
            HashMap::new(),
            Box::new(LastValue::default()),
            link(),
            checkpoint_bytes,
        )
    }

    fn obs(pass_idx: usize, bw: Option<f64>) -> PassObservation {
        PassObservation {
            pass_idx,
            elapsed: SimTime::ZERO,
            remote: bw.is_some(),
            observed_wan_bw: bw,
            finished: false,
        }
    }

    #[test]
    fn stable_bandwidth_never_migrates() {
        let mut p = policy(4, 1_000);
        let cur = replica("primary", 1e6);
        for i in 0..4 {
            assert!(matches!(p.after_pass(&obs(i, Some(1e6)), &cur), PassAction::Continue));
        }
        assert_eq!(p.migrations(), 0);
        assert!(p.last_decision().is_none(), "the gate never even ran");
    }

    #[test]
    fn collapsed_bandwidth_with_a_cheap_checkpoint_migrates() {
        let mut p = policy(4, 1_000);
        let cur = replica("primary", 1e6);
        match p.after_pass(&obs(0, Some(1e5)), &cur) {
            PassAction::Migrate(d) => assert_eq!(d.repository.name, "backup"),
            PassAction::Continue => panic!("expected migration"),
        }
        assert_eq!(p.migrations(), 1);
        let d = p.last_decision().expect("gate ran");
        assert!(d.worthwhile(0.0));
        assert!(d.cost.restart > 0.0, "restart I/O is priced in");
    }

    #[test]
    fn enormous_checkpoint_vetoes_the_controllers_migration() {
        // Same degraded path as above, but the checkpoint would take
        // longer to ship than the run has left: the inner controller
        // says move, the cost gate says stay.
        let mut p = policy(4, 500_000_000_000);
        let cur = replica("primary", 1e6);
        assert!(matches!(p.after_pass(&obs(0, Some(1e5)), &cur), PassAction::Continue));
        assert_eq!(p.migrations(), 0);
        let d = p.last_decision().expect("the gate ran and vetoed");
        assert!(!d.worthwhile(0.0));
    }

    #[test]
    fn nearly_finished_runs_stay_put() {
        // Last pass ahead: the remaining fraction is zero, so there is
        // nothing left to win by moving.
        let mut p = policy(4, 1_000);
        let cur = replica("primary", 1e6);
        assert!(matches!(p.after_pass(&obs(3, Some(1e5)), &cur), PassAction::Continue));
        assert_eq!(p.migrations(), 0);
    }
}
