//! Modeling across heterogeneous clusters (§3.4).
//!
//! To predict on cluster B from a profile taken on cluster A, a small set
//! of representative applications is run on *identical configurations*
//! (same node counts, same dataset) on both clusters; the per-component
//! time ratios, averaged over the applications, become the scaling
//! factors `s_d`, `s_n`, `s_c`. A prediction for B is then the prediction
//! for A with each component scaled:
//!
//! `T̂_B = s_d * T̂_disk,A + s_n * T̂_net,A + s_c * T̂_comp,A`

use crate::model::Prediction;
use crate::profile::Profile;
use serde::{Deserialize, Serialize};

/// Component-wise scaling factors between two clusters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingFactors {
    /// Data retrieval factor `s_d`.
    pub disk: f64,
    /// Data communication factor `s_n`.
    pub network: f64,
    /// Data processing factor `s_c`.
    pub compute: f64,
}

impl ScalingFactors {
    /// The identity (same cluster).
    pub const IDENTITY: ScalingFactors = ScalingFactors { disk: 1.0, network: 1.0, compute: 1.0 };

    /// Measure factors from representative application runs: `pairs[i]`
    /// holds the profiles of application `i` on cluster A and on cluster
    /// B, on identical configurations.
    ///
    /// `s_d = mean_i(T_disk,i,B / T_disk,i,A)` and likewise for the other
    /// components (§3.4's averaging over three representative
    /// applications).
    pub fn measure(pairs: &[(Profile, Profile)]) -> ScalingFactors {
        assert!(!pairs.is_empty(), "need at least one representative application");
        for (a, b) in pairs {
            assert_eq!(
                (a.data_nodes, a.compute_nodes, a.dataset_bytes),
                (b.data_nodes, b.compute_nodes, b.dataset_bytes),
                "scaling factors require identical configurations on both clusters \
                 (app {} vs {})",
                a.app,
                b.app
            );
        }
        let n = pairs.len() as f64;
        ScalingFactors {
            disk: pairs.iter().map(|(a, b)| b.t_disk / a.t_disk).sum::<f64>() / n,
            network: pairs.iter().map(|(a, b)| b.t_network / a.t_network).sum::<f64>() / n,
            compute: pairs.iter().map(|(a, b)| b.t_compute / a.t_compute).sum::<f64>() / n,
        }
    }

    /// Apply the factors to a prediction made for cluster A.
    pub fn apply(&self, a: &Prediction) -> Prediction {
        Prediction {
            t_disk: self.disk * a.t_disk,
            t_network: self.network * a.t_network,
            t_compute: self.compute * a.t_compute,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(app: &str, td: f64, tn: f64, tc: f64) -> Profile {
        Profile {
            app: app.into(),
            data_nodes: 4,
            compute_nodes: 4,
            wan_bw: 1e6,
            dataset_bytes: 1_000,
            t_disk: td,
            t_network: tn,
            t_compute: tc,
            t_ro: 0.0,
            t_g: 0.0,
            max_obj_bytes: 10,
            passes: 1,
            repo_machine: "a".into(),
            compute_machine: "a".into(),
        }
    }

    #[test]
    fn factors_are_mean_component_ratios() {
        let pairs = vec![
            (profile("x", 10.0, 4.0, 100.0), profile("x", 5.0, 2.0, 30.0)),
            (profile("y", 8.0, 4.0, 50.0), profile("y", 2.0, 2.0, 20.0)),
        ];
        let f = ScalingFactors::measure(&pairs);
        assert!((f.disk - (0.5 + 0.25) / 2.0).abs() < 1e-12);
        assert!((f.network - 0.5).abs() < 1e-12);
        assert!((f.compute - (0.3 + 0.4) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn apply_scales_each_component() {
        let f = ScalingFactors { disk: 0.5, network: 0.25, compute: 0.3 };
        let p = Prediction { t_disk: 10.0, t_network: 4.0, t_compute: 100.0 };
        let b = f.apply(&p);
        assert_eq!(b.t_disk, 5.0);
        assert_eq!(b.t_network, 1.0);
        assert!((b.t_compute - 30.0).abs() < 1e-12);
        assert!((b.total() - 36.0).abs() < 1e-12);
    }

    #[test]
    fn identity_changes_nothing() {
        let p = Prediction { t_disk: 1.0, t_network: 2.0, t_compute: 3.0 };
        assert_eq!(ScalingFactors::IDENTITY.apply(&p), p);
    }

    #[test]
    #[should_panic(expected = "identical configurations")]
    fn mismatched_configurations_rejected() {
        let mut b = profile("x", 1.0, 1.0, 1.0);
        b.compute_nodes = 8;
        ScalingFactors::measure(&[(profile("x", 1.0, 1.0, 1.0), b)]);
    }

    #[test]
    #[should_panic(expected = "at least one representative")]
    fn empty_pairs_rejected() {
        ScalingFactors::measure(&[]);
    }
}
