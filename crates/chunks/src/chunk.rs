//! The chunk: FREERIDE-G's unit of storage, transfer, and processing.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Spatial extent of a chunk along the dataset's partitioning axis, with
/// halo (overlap) widths.
///
/// The vortex and defect applications partition their grids into slabs
/// with duplicated boundary layers so the detection phase needs no
/// neighbor communication (§4.4 of the paper: "overlapping data instances
/// from neighboring partitions"). `begin..end` is the slab the chunk
/// *owns*; the payload additionally contains `halo_before` layers before
/// `begin` and `halo_after` layers after `end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// First owned coordinate (inclusive).
    pub begin: u64,
    /// One past the last owned coordinate.
    pub end: u64,
    /// Duplicated layers preceding `begin` in the payload.
    pub halo_before: u64,
    /// Duplicated layers following `end` in the payload.
    pub halo_after: u64,
}

impl Span {
    /// Number of owned coordinates.
    pub fn owned_len(&self) -> u64 {
        self.end - self.begin
    }

    /// Number of coordinates present in the payload (owned + halo).
    pub fn stored_len(&self) -> u64 {
        self.halo_before + self.owned_len() + self.halo_after
    }
}

/// One chunk of a dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Chunk {
    /// Position of the chunk within its dataset (0-based, dense).
    pub id: u32,
    /// Encoded element data (see [`crate::codec`]). Cheap to clone.
    #[serde(skip, default)]
    pub payload: Bytes,
    /// Number of *owned* data elements in the chunk (halo excluded).
    pub elements: u64,
    /// Bytes this chunk occupies on the wire and on disk at nominal
    /// (paper) scale. `logical_bytes >= payload.len()` whenever the
    /// dataset was generated at reduced scale.
    pub logical_bytes: u64,
    /// Spatial span for halo-partitioned datasets; `None` for point sets.
    pub span: Option<Span>,
}

impl Chunk {
    /// Physical payload size in bytes.
    pub fn physical_bytes(&self) -> usize {
        self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_lengths() {
        let s = Span { begin: 10, end: 20, halo_before: 1, halo_after: 2 };
        assert_eq!(s.owned_len(), 10);
        assert_eq!(s.stored_len(), 13);
    }

    #[test]
    fn chunk_reports_physical_size() {
        let c = Chunk {
            id: 0,
            payload: Bytes::from_static(&[0u8; 16]),
            elements: 4,
            logical_bytes: 1600,
            span: None,
        };
        assert_eq!(c.physical_bytes(), 16);
        assert!(c.logical_bytes > c.physical_bytes() as u64);
    }
}
