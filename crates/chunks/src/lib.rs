//! # fg-chunks — chunked remote data repository
//!
//! FREERIDE-G stores datasets in *chunks* whose size is manageable for the
//! repository nodes, and used the Active Data Repository (ADR) to automate
//! retrieval. ADR is not available, so this crate is the substitute: an
//! in-memory chunk store with the pieces the middleware needs —
//!
//! * [`chunk`] — the chunk unit: an opaque payload, element count,
//!   logical (wire) size, and optional spatial span with halo widths for
//!   the two scientific applications that partition with overlap.
//! * [`codec`] — little-endian encode/decode of `f32`/`u32` element
//!   streams into chunk payloads.
//! * [`dataset`] — a chunked dataset plus its builder. Datasets carry a
//!   *scale factor*: experiments run on 1/100th-size physical data while
//!   disk, network, and metered-compute costs are charged at the nominal
//!   (paper-sized) volume.
//! * [`partition`] — chunk → data-node placement (contiguous and
//!   round-robin).
//! * [`distribution`] — chunk → compute-node destination assignment
//!   (the data server's "data distribution" role).
//! * [`replica`] — which repository sites hold a copy of which dataset.
//! * [`storage`] — a length-prefixed binary container persisting whole
//!   datasets (payloads included) across experiment runs.

#![warn(missing_docs)]

pub mod chunk;
pub mod codec;
pub mod dataset;
pub mod distribution;
pub mod partition;
pub mod replica;
pub mod storage;

pub use chunk::{Chunk, Span};
pub use dataset::{Dataset, DatasetBuilder};
pub use replica::ReplicaCatalog;
