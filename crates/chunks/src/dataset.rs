//! Chunked datasets and their builder.

use crate::chunk::{Chunk, Span};
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// A chunked dataset as hosted by a repository.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Stable identifier (used by the replica catalog).
    pub id: String,
    /// Generator/application family ("kmeans-points", "cfd-field", ...).
    pub kind: String,
    /// Dataset scale: physical bytes = `scale` × logical bytes. Running
    /// the experiments at `scale = 0.01` keeps real computation tractable
    /// while disk, network, and metered compute are charged at nominal
    /// (paper-sized) volume.
    pub scale: f64,
    /// The chunks, densely numbered from zero.
    pub chunks: Vec<Chunk>,
}

impl Dataset {
    /// Total logical (nominal) size in bytes — the `s` of the prediction
    /// model.
    pub fn logical_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.logical_bytes).sum()
    }

    /// Total physical payload bytes actually held in memory.
    pub fn physical_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.physical_bytes() as u64).sum()
    }

    /// Total owned elements across chunks.
    pub fn elements(&self) -> u64 {
        self.chunks.iter().map(|c| c.elements).sum()
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// The work-inflation factor applied to metered computation so that
    /// virtual compute time corresponds to the nominal dataset size
    /// (`1/scale`).
    pub fn work_inflation(&self) -> f64 {
        1.0 / self.scale
    }

    /// Repackage the dataset into `num_chunks` chunks of (near-)equal
    /// element counts, preserving element order. Only element-stream
    /// datasets can be re-chunked — halo-partitioned grids (chunks with
    /// spans) would lose their overlap structure. Used by chunk-size
    /// sensitivity experiments.
    pub fn rechunk(&self, num_chunks: usize) -> Dataset {
        assert!(num_chunks >= 1);
        assert!(
            self.chunks.iter().all(|c| c.span.is_none()),
            "cannot re-chunk a halo-partitioned dataset"
        );
        let total_elements = self.elements();
        assert!(
            num_chunks as u64 <= total_elements,
            "cannot make {num_chunks} chunks from {total_elements} elements"
        );
        // Element stride in bytes must be uniform across chunks.
        let stride = self.chunks[0].physical_bytes() as u64 / self.chunks[0].elements;
        for c in &self.chunks {
            assert_eq!(
                c.physical_bytes() as u64,
                stride * c.elements,
                "non-uniform element stride; cannot re-chunk"
            );
        }
        let mut bytes = Vec::with_capacity((total_elements * stride) as usize);
        for c in &self.chunks {
            bytes.extend_from_slice(&c.payload);
        }
        let mut builder = DatasetBuilder::new(&self.id, &self.kind, self.scale);
        for i in 0..num_chunks as u64 {
            let lo = i * total_elements / num_chunks as u64;
            let hi = (i + 1) * total_elements / num_chunks as u64;
            let payload =
                Bytes::copy_from_slice(&bytes[(lo * stride) as usize..(hi * stride) as usize]);
            builder.push_chunk(payload, hi - lo, None);
        }
        builder.build()
    }
}

/// Incrementally assembles a [`Dataset`].
pub struct DatasetBuilder {
    id: String,
    kind: String,
    scale: f64,
    chunks: Vec<Chunk>,
}

impl DatasetBuilder {
    /// Start a dataset with the given identifier, kind, and scale
    /// (`0 < scale <= 1`).
    pub fn new(id: &str, kind: &str, scale: f64) -> DatasetBuilder {
        assert!(scale > 0.0 && scale <= 1.0, "dataset scale must be in (0, 1], got {scale}");
        DatasetBuilder { id: id.into(), kind: kind.into(), scale, chunks: Vec::new() }
    }

    /// Append a chunk. `elements` counts owned elements only; the chunk's
    /// logical size is its physical size inflated by `1/scale`.
    pub fn push_chunk(&mut self, payload: Bytes, elements: u64, span: Option<Span>) -> &mut Self {
        let id = u32::try_from(self.chunks.len()).expect("too many chunks");
        let logical = (payload.len() as f64 / self.scale).round() as u64;
        self.chunks.push(Chunk { id, payload, elements, logical_bytes: logical, span });
        self
    }

    /// Logical size of the most recently pushed chunk (used by the
    /// storage loader to cross-check container metadata).
    pub fn peek_last_logical(&self) -> Option<u64> {
        self.chunks.last().map(|c| c.logical_bytes)
    }

    /// Finish the dataset. Panics if no chunks were added — an empty
    /// dataset cannot be partitioned across data nodes.
    pub fn build(self) -> Dataset {
        assert!(!self.chunks.is_empty(), "dataset {} has no chunks", self.id);
        Dataset { id: self.id, kind: self.kind, scale: self.scale, chunks: self.chunks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_f32s;

    fn payload(n: usize) -> Bytes {
        encode_f32s(&vec![1.0f32; n])
    }

    #[test]
    fn builder_numbers_chunks_densely() {
        let mut b = DatasetBuilder::new("d", "test", 1.0);
        b.push_chunk(payload(4), 4, None);
        b.push_chunk(payload(4), 4, None);
        let ds = b.build();
        assert_eq!(ds.chunks[0].id, 0);
        assert_eq!(ds.chunks[1].id, 1);
        assert_eq!(ds.num_chunks(), 2);
        assert_eq!(ds.elements(), 8);
    }

    #[test]
    fn scale_inflates_logical_size() {
        let mut b = DatasetBuilder::new("d", "test", 0.01);
        b.push_chunk(payload(100), 100, None); // 400 physical bytes
        let ds = b.build();
        assert_eq!(ds.physical_bytes(), 400);
        assert_eq!(ds.logical_bytes(), 40_000);
        assert!((ds.work_inflation() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn full_scale_dataset_has_equal_sizes() {
        let mut b = DatasetBuilder::new("d", "test", 1.0);
        b.push_chunk(payload(10), 10, None);
        let ds = b.build();
        assert_eq!(ds.physical_bytes(), ds.logical_bytes());
    }

    #[test]
    #[should_panic(expected = "has no chunks")]
    fn empty_dataset_rejected() {
        DatasetBuilder::new("d", "test", 1.0).build();
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn zero_scale_rejected() {
        DatasetBuilder::new("d", "test", 0.0);
    }

    #[test]
    fn rechunk_preserves_elements_and_bytes() {
        let mut b = DatasetBuilder::new("d", "test", 0.5);
        for i in 0..4 {
            let vals: Vec<f32> = (0..25).map(|j| (i * 25 + j) as f32).collect();
            b.push_chunk(encode_f32s(&vals), 25, None);
        }
        let ds = b.build();
        let re = ds.rechunk(7);
        assert_eq!(re.num_chunks(), 7);
        assert_eq!(re.elements(), ds.elements());
        assert_eq!(re.physical_bytes(), ds.physical_bytes());
        assert_eq!(re.logical_bytes(), ds.logical_bytes());
        // Element order preserved: reassemble and compare.
        let orig: Vec<u8> = ds.chunks.iter().flat_map(|c| c.payload.to_vec()).collect();
        let back: Vec<u8> = re.chunks.iter().flat_map(|c| c.payload.to_vec()).collect();
        assert_eq!(orig, back);
        // Balance to within one element.
        let (mn, mx) = (
            re.chunks.iter().map(|c| c.elements).min().unwrap(),
            re.chunks.iter().map(|c| c.elements).max().unwrap(),
        );
        assert!(mx - mn <= 1);
    }

    #[test]
    #[should_panic(expected = "halo-partitioned")]
    fn rechunk_rejects_halo_datasets() {
        let mut b = DatasetBuilder::new("d", "test", 1.0);
        b.push_chunk(
            encode_f32s(&[1.0; 8]),
            8,
            Some(crate::chunk::Span { begin: 0, end: 2, halo_before: 0, halo_after: 0 }),
        );
        b.build().rechunk(2);
    }
}
