//! Chunk → data-node placement.
//!
//! The repository divides a dataset's chunks across its `n` on-line data
//! nodes. Contiguous placement (ADR-style, preserving spatial locality)
//! is the default; round-robin is provided for comparison and tests.

/// Contiguous placement: node `i` holds chunks
/// `[i*m/n, (i+1)*m/n)` — balanced to within one chunk.
pub fn contiguous(num_chunks: usize, data_nodes: usize) -> Vec<Vec<usize>> {
    assert!(data_nodes >= 1);
    (0..data_nodes)
        .map(|i| {
            let lo = i * num_chunks / data_nodes;
            let hi = (i + 1) * num_chunks / data_nodes;
            (lo..hi).collect()
        })
        .collect()
}

/// Round-robin placement: chunk `k` lives on node `k % n`.
pub fn round_robin(num_chunks: usize, data_nodes: usize) -> Vec<Vec<usize>> {
    assert!(data_nodes >= 1);
    let mut out = vec![Vec::new(); data_nodes];
    for k in 0..num_chunks {
        out[k % data_nodes].push(k);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn contiguous_is_contiguous_and_balanced() {
        let p = contiguous(10, 4);
        assert_eq!(p, vec![vec![0, 1], vec![2, 3, 4], vec![5, 6], vec![7, 8, 9]]);
    }

    #[test]
    fn round_robin_interleaves() {
        let p = round_robin(5, 2);
        assert_eq!(p, vec![vec![0, 2, 4], vec![1, 3]]);
    }

    #[test]
    fn single_node_gets_everything() {
        assert_eq!(contiguous(3, 1), vec![vec![0, 1, 2]]);
        assert_eq!(round_robin(3, 1), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn more_nodes_than_chunks_leaves_some_empty() {
        let p = contiguous(2, 4);
        let total: usize = p.iter().map(|v| v.len()).sum();
        assert_eq!(total, 2);
    }

    proptest! {
        /// Both placements form a partition: every chunk appears exactly
        /// once, and load is balanced to within one chunk.
        #[test]
        fn placements_are_balanced_partitions(
            m in 0usize..500,
            n in 1usize..17,
            rr in proptest::bool::ANY,
        ) {
            let p = if rr { round_robin(m, n) } else { contiguous(m, n) };
            prop_assert_eq!(p.len(), n);
            let mut seen = vec![false; m];
            for node in &p {
                for &k in node {
                    prop_assert!(!seen[k], "chunk {} placed twice", k);
                    seen[k] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s));
            let lens: Vec<usize> = p.iter().map(|v| v.len()).collect();
            let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
            prop_assert!(max - min <= 1, "imbalance: {:?}", lens);
        }
    }
}
