//! Chunk → compute-node destination assignment.
//!
//! This is the data server's "data distribution" role: before any bytes
//! move, every chunk is assigned the compute node that will process it.
//! Each data node streams to its own contiguous band of compute nodes
//! (so a data node talks to `~c/n` destinations, never all `c`),
//! round-robining its chunks within the band.

/// Compute the destination compute node for every chunk.
///
/// `placement[d]` lists the chunks held by data node `d` (from
/// [`crate::partition`]); `compute_nodes` is `c >= len(placement)`.
/// Returns `dest[chunk_id] = compute node`.
pub fn assign_destinations(placement: &[Vec<usize>], compute_nodes: usize) -> Vec<usize> {
    let n = placement.len();
    assert!(n >= 1, "need at least one data node");
    assert!(compute_nodes >= n, "need compute nodes >= data nodes ({compute_nodes} < {n})");
    let num_chunks: usize = placement.iter().map(|v| v.len()).sum();
    let mut dest = vec![usize::MAX; num_chunks];
    for (d, chunks) in placement.iter().enumerate() {
        // Data node d's band of compute nodes.
        let lo = d * compute_nodes / n;
        let hi = (d + 1) * compute_nodes / n;
        let band = hi - lo;
        for (j, &k) in chunks.iter().enumerate() {
            dest[k] = lo + j % band;
        }
    }
    assert!(
        dest.iter().all(|&d| d != usize::MAX),
        "placement did not cover all chunks 0..{num_chunks}"
    );
    dest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::contiguous;
    use proptest::prelude::*;

    #[test]
    fn one_to_one_maps_bandwise() {
        // 2 data nodes, 4 compute nodes: node 0 feeds {0,1}, node 1 feeds {2,3}.
        let placement = contiguous(8, 2);
        let dest = assign_destinations(&placement, 4);
        assert_eq!(dest, vec![0, 1, 0, 1, 2, 3, 2, 3]);
    }

    #[test]
    fn equal_counts_gives_identity_bands() {
        let placement = contiguous(6, 3);
        let dest = assign_destinations(&placement, 3);
        assert_eq!(dest, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn single_data_node_feeds_all() {
        let placement = contiguous(6, 1);
        let dest = assign_destinations(&placement, 3);
        assert_eq!(dest, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "compute nodes >= data nodes")]
    fn fewer_compute_nodes_rejected() {
        assign_destinations(&contiguous(4, 4), 2);
    }

    proptest! {
        /// Every chunk gets a valid destination; each data node only sends
        /// within its band; and when the counts divide evenly, compute
        /// load is balanced to within one chunk.
        #[test]
        fn destinations_are_valid_and_balanced(
            m in 1usize..300,
            n_pow in 0u32..4,
            c_pow in 0u32..5,
        ) {
            let n = 1usize << n_pow;
            let c = 1usize << c_pow.max(n_pow); // ensure c >= n
            let placement = contiguous(m, n);
            let dest = assign_destinations(&placement, c);
            prop_assert_eq!(dest.len(), m);
            for (d, chunks) in placement.iter().enumerate() {
                let lo = d * c / n;
                let hi = (d + 1) * c / n;
                for &k in chunks {
                    prop_assert!(dest[k] >= lo && dest[k] < hi,
                        "chunk {} of data node {} escaped band [{},{})", k, d, lo, hi);
                }
            }
            // Global balance: destination counts differ by at most n
            // (each band is balanced to within one chunk per data node).
            let mut counts = vec![0usize; c];
            for &d in &dest { counts[d] += 1; }
            let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            prop_assert!(max - min <= n, "imbalance {:?}", counts);
        }
    }
}
