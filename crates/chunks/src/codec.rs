//! Little-endian element codecs for chunk payloads.
//!
//! Chunks travel as opaque byte strings (as they would on the wire in the
//! real middleware); applications encode their element streams on
//! generation and decode once per pass. Everything is plain safe Rust —
//! no transmutes — so payloads need no alignment guarantees.

use bytes::{BufMut, Bytes, BytesMut};

/// Encode a slice of `f32` values, little-endian.
pub fn encode_f32s(values: &[f32]) -> Bytes {
    let mut buf = BytesMut::with_capacity(values.len() * 4);
    for v in values {
        buf.put_f32_le(*v);
    }
    buf.freeze()
}

/// Decode a payload produced by [`encode_f32s`]. Panics if the length is
/// not a multiple of four (a corrupt chunk is a logic error here, not an
/// I/O condition).
pub fn decode_f32s(payload: &Bytes) -> Vec<f32> {
    assert!(
        payload.len().is_multiple_of(4),
        "f32 payload length {} not a multiple of 4",
        payload.len()
    );
    payload.chunks_exact(4).map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]])).collect()
}

/// Encode a slice of `u32` values, little-endian.
pub fn encode_u32s(values: &[u32]) -> Bytes {
    let mut buf = BytesMut::with_capacity(values.len() * 4);
    for v in values {
        buf.put_u32_le(*v);
    }
    buf.freeze()
}

/// Decode a payload produced by [`encode_u32s`].
pub fn decode_u32s(payload: &Bytes) -> Vec<u32> {
    assert!(
        payload.len().is_multiple_of(4),
        "u32 payload length {} not a multiple of 4",
        payload.len()
    );
    payload.chunks_exact(4).map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn f32_roundtrip_simple() {
        let vals = vec![0.0f32, -1.5, 3.25, f32::MAX];
        assert_eq!(decode_f32s(&encode_f32s(&vals)), vals);
    }

    #[test]
    fn u32_roundtrip_simple() {
        let vals = vec![0u32, 1, 0xdead_beef, u32::MAX];
        assert_eq!(decode_u32s(&encode_u32s(&vals)), vals);
    }

    #[test]
    fn empty_payloads_are_fine() {
        assert!(decode_f32s(&encode_f32s(&[])).is_empty());
        assert!(decode_u32s(&encode_u32s(&[])).is_empty());
    }

    #[test]
    #[should_panic(expected = "not a multiple of 4")]
    fn truncated_payload_panics() {
        decode_f32s(&Bytes::from_static(&[1, 2, 3]));
    }

    proptest! {
        #[test]
        fn f32_roundtrip(vals in proptest::collection::vec(any::<f32>(), 0..256)) {
            let back = decode_f32s(&encode_f32s(&vals));
            prop_assert_eq!(back.len(), vals.len());
            for (a, b) in back.iter().zip(vals.iter()) {
                prop_assert!(a.to_bits() == b.to_bits()); // NaN-exact
            }
        }

        #[test]
        fn u32_roundtrip(vals in proptest::collection::vec(any::<u32>(), 0..256)) {
            prop_assert_eq!(decode_u32s(&encode_u32s(&vals)), vals);
        }
    }
}
