//! On-disk dataset persistence.
//!
//! The serde representation of a [`Dataset`] deliberately skips chunk
//! payloads (reports and catalogs shouldn't drag gigabytes of data into
//! JSON). This module is the complement: a simple length-prefixed binary
//! container that stores a complete dataset — metadata *and* payloads —
//! so generated repositories can be written once and reused across
//! experiment runs.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic "FGDS"  u32 version  u32 id_len  id  u32 kind_len  kind  f64 scale
//! u32 num_chunks
//! per chunk: u64 elements  u64 logical_bytes
//!            u8 has_span [u64 begin  u64 end  u64 halo_before  u64 halo_after]
//!            u64 payload_len  payload
//! ```

use crate::chunk::Span;
use crate::dataset::{Dataset, DatasetBuilder};
use bytes::Bytes;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"FGDS";
const VERSION: u32 = 1;

/// Write a dataset (with payloads) to `path`.
pub fn save(dataset: &Dataset, path: &Path) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    write_str(&mut w, &dataset.id)?;
    write_str(&mut w, &dataset.kind)?;
    w.write_all(&dataset.scale.to_le_bytes())?;
    w.write_all(&(dataset.chunks.len() as u32).to_le_bytes())?;
    for chunk in &dataset.chunks {
        w.write_all(&chunk.elements.to_le_bytes())?;
        w.write_all(&chunk.logical_bytes.to_le_bytes())?;
        match chunk.span {
            Some(span) => {
                w.write_all(&[1u8])?;
                for v in [span.begin, span.end, span.halo_before, span.halo_after] {
                    w.write_all(&v.to_le_bytes())?;
                }
            }
            None => w.write_all(&[0u8])?,
        }
        w.write_all(&(chunk.payload.len() as u64).to_le_bytes())?;
        w.write_all(&chunk.payload)?;
    }
    w.flush()
}

/// Read a dataset written by [`save`].
pub fn load(path: &Path) -> io::Result<Dataset> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a FGDS dataset file"));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(bad(&format!("unsupported FGDS version {version}")));
    }
    let id = read_str(&mut r)?;
    let kind = read_str(&mut r)?;
    let scale = f64::from_le_bytes(read_array(&mut r)?);
    if !(scale > 0.0 && scale <= 1.0) {
        return Err(bad(&format!("corrupt scale {scale}")));
    }
    let num_chunks = read_u32(&mut r)? as usize;
    if num_chunks == 0 {
        return Err(bad("dataset has no chunks"));
    }
    let mut builder = DatasetBuilder::new(&id, &kind, scale);
    for _ in 0..num_chunks {
        let elements = u64::from_le_bytes(read_array(&mut r)?);
        let logical = u64::from_le_bytes(read_array(&mut r)?);
        let mut flag = [0u8; 1];
        r.read_exact(&mut flag)?;
        let span = match flag[0] {
            0 => None,
            1 => Some(Span {
                begin: u64::from_le_bytes(read_array(&mut r)?),
                end: u64::from_le_bytes(read_array(&mut r)?),
                halo_before: u64::from_le_bytes(read_array(&mut r)?),
                halo_after: u64::from_le_bytes(read_array(&mut r)?),
            }),
            other => return Err(bad(&format!("corrupt span flag {other}"))),
        };
        let len = u64::from_le_bytes(read_array(&mut r)?);
        if len > 1 << 40 {
            return Err(bad(&format!("implausible payload length {len}")));
        }
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        builder.push_chunk(Bytes::from(payload), elements, span);
        // push_chunk recomputes logical size from scale; verify it agrees
        // with the stored value (detects container/scale mismatches).
        let rebuilt = builder_last_logical(&builder);
        if rebuilt.abs_diff(logical) > 1 {
            return Err(bad(&format!(
                "logical size mismatch: stored {logical}, rebuilt {rebuilt}"
            )));
        }
    }
    Ok(builder.build())
}

fn builder_last_logical(b: &DatasetBuilder) -> u64 {
    b.peek_last_logical().expect("chunk just pushed")
}

fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    w.write_all(&(s.len() as u32).to_le_bytes())?;
    w.write_all(s.as_bytes())
}

fn read_str(r: &mut impl Read) -> io::Result<String> {
    let len = read_u32(r)? as usize;
    if len > 1 << 20 {
        return Err(bad("implausible string length"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|e| bad(&format!("bad utf-8: {e}")))
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    Ok(u32::from_le_bytes(read_array(r)?))
}

fn read_array<const N: usize>(r: &mut impl Read) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_f32s;

    fn sample() -> Dataset {
        let mut b = DatasetBuilder::new("persist-me", "test-kind", 0.01);
        b.push_chunk(encode_f32s(&[1.0, 2.0, 3.0]), 3, None);
        b.push_chunk(
            encode_f32s(&[4.0; 64]),
            32,
            Some(Span { begin: 0, end: 4, halo_before: 0, halo_after: 1 }),
        );
        b.build()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let dir = std::env::temp_dir().join("fgds-test-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.fgds");
        let ds = sample();
        save(&ds, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.id, ds.id);
        assert_eq!(back.kind, ds.kind);
        assert_eq!(back.scale, ds.scale);
        assert_eq!(back.num_chunks(), ds.num_chunks());
        for (a, b) in ds.chunks.iter().zip(back.chunks.iter()) {
            assert_eq!(a.payload, b.payload);
            assert_eq!(a.elements, b.elements);
            assert_eq!(a.logical_bytes, b.logical_bytes);
            assert_eq!(a.span, b.span);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_wrong_magic() {
        let dir = std::env::temp_dir().join("fgds-test-magic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("junk.fgds");
        std::fs::write(&path, b"NOPE but long enough to read").unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.to_string().contains("not a FGDS"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_truncated_file() {
        let dir = std::env::temp_dir().join("fgds-test-trunc");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trunc.fgds");
        let full = dir.join("full.fgds");
        save(&sample(), &full).unwrap();
        let bytes = std::fs::read(&full).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&full).unwrap();
    }
}
