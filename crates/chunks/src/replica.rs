//! Replica catalog: which repository sites hold which datasets.
//!
//! In the paper, a dataset "may be replicated across multiple
//! repositories", and resource selection chooses the replica allowing the
//! lowest-cost retrieval + movement + processing. The catalog is the
//! lookup half of that: dataset id → replica site names. (Site
//! descriptions live in `fg-cluster`; the two are joined by name at
//! selection time, keeping this crate free of resource-model types.)

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Dataset → replica-site registry.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReplicaCatalog {
    entries: BTreeMap<String, Vec<String>>,
}

impl ReplicaCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a replica of `dataset` at `site`. Duplicate registrations
    /// are idempotent.
    pub fn register(&mut self, dataset: &str, site: &str) {
        let sites = self.entries.entry(dataset.to_string()).or_default();
        if !sites.iter().any(|s| s == site) {
            sites.push(site.to_string());
        }
    }

    /// Sites holding a replica of `dataset` (empty if unknown).
    pub fn replicas(&self, dataset: &str) -> &[String] {
        self.entries.get(dataset).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Remove a replica (e.g. a site going off-line). Returns whether it
    /// was present.
    pub fn unregister(&mut self, dataset: &str, site: &str) -> bool {
        if let Some(sites) = self.entries.get_mut(dataset) {
            if let Some(pos) = sites.iter().position(|s| s == site) {
                sites.remove(pos);
                return true;
            }
        }
        false
    }

    /// All registered dataset ids.
    pub fn datasets(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut cat = ReplicaCatalog::new();
        cat.register("ds1", "osu");
        cat.register("ds1", "anl");
        assert_eq!(cat.replicas("ds1"), &["osu", "anl"]);
        assert!(cat.replicas("nope").is_empty());
    }

    #[test]
    fn registration_is_idempotent() {
        let mut cat = ReplicaCatalog::new();
        cat.register("ds1", "osu");
        cat.register("ds1", "osu");
        assert_eq!(cat.replicas("ds1").len(), 1);
    }

    #[test]
    fn unregister_removes() {
        let mut cat = ReplicaCatalog::new();
        cat.register("ds1", "osu");
        assert!(cat.unregister("ds1", "osu"));
        assert!(!cat.unregister("ds1", "osu"));
        assert!(cat.replicas("ds1").is_empty());
    }

    #[test]
    fn datasets_enumerates_keys() {
        let mut cat = ReplicaCatalog::new();
        cat.register("b", "x");
        cat.register("a", "x");
        let names: Vec<&str> = cat.datasets().collect();
        assert_eq!(names, vec!["a", "b"]); // BTreeMap order
    }
}
