//! Uniform driver over the application suite.
//!
//! The middleware API is generic over the application type; the harness
//! needs to iterate "all five applications of the paper", so this enum
//! monomorphizes each arm behind one non-generic surface.

use fg_chunks::Dataset;
use fg_cluster::Deployment;
use fg_middleware::{ExecutionReport, Executor, FaultOptions};
use fg_predict::AppClasses;
use fg_sim::FaultSchedule;
use fg_trace::Trace;

/// The applications of the paper's evaluation (plus apriori, the
/// extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperApp {
    /// k-means clustering (§4.1).
    KMeans,
    /// EM clustering (§4.2).
    Em,
    /// k-nearest-neighbor search (§4.3).
    Knn,
    /// Vortex detection (§4.4).
    Vortex,
    /// Molecular defect detection (§4.5).
    Defect,
    /// Apriori association mining (extension).
    Apriori,
    /// Neural-network training (extension).
    Ann,
}

/// Planted patterns used for apriori datasets.
const APRIORI_PATTERNS: [[u32; 3]; 2] = [[2, 17, 40], [5, 23, 51]];

impl PaperApp {
    /// The five applications evaluated in the paper, in figure order.
    pub const PAPER_FIVE: [PaperApp; 5] =
        [PaperApp::KMeans, PaperApp::Vortex, PaperApp::Defect, PaperApp::Em, PaperApp::Knn];

    /// Application name (matches `ReductionApp::name`).
    pub fn name(&self) -> &'static str {
        match self {
            PaperApp::KMeans => "kmeans",
            PaperApp::Em => "em",
            PaperApp::Knn => "knn",
            PaperApp::Vortex => "vortex",
            PaperApp::Defect => "defect",
            PaperApp::Apriori => "apriori",
            PaperApp::Ann => "ann",
        }
    }

    /// Parse from a name.
    pub fn parse(name: &str) -> Option<PaperApp> {
        Some(match name {
            "kmeans" => PaperApp::KMeans,
            "em" => PaperApp::Em,
            "knn" => PaperApp::Knn,
            "vortex" => PaperApp::Vortex,
            "defect" => PaperApp::Defect,
            "apriori" => PaperApp::Apriori,
            "ann" => PaperApp::Ann,
            _ => return None,
        })
    }

    /// The documented class pair.
    pub fn classes(&self) -> AppClasses {
        AppClasses::for_app(self.name())
    }

    /// Generate this application's dataset at a nominal size and scale.
    pub fn generate(&self, id: &str, nominal_mb: f64, scale: f64, seed: u64) -> Dataset {
        match self {
            PaperApp::KMeans => fg_apps::kmeans::generate(id, nominal_mb, scale, seed, 8),
            PaperApp::Em => fg_apps::em::generate(id, nominal_mb, scale, seed, 4),
            PaperApp::Knn => fg_apps::knn::generate(id, nominal_mb, scale, seed),
            PaperApp::Vortex => fg_apps::vortex::generate(id, nominal_mb, scale, seed).0,
            PaperApp::Defect => fg_apps::defect::generate(id, nominal_mb, scale, seed).0,
            PaperApp::Apriori => {
                fg_apps::apriori::generate(id, nominal_mb, scale, seed, &APRIORI_PATTERNS)
            }
            PaperApp::Ann => fg_apps::ann::generate(id, nominal_mb, scale, seed),
        }
    }

    /// Execute on a deployment, returning the measured report. The
    /// application parameters are the fixed experiment instances, so the
    /// same dataset always does the same work.
    pub fn execute(&self, deployment: Deployment, dataset: &Dataset) -> ExecutionReport {
        let exec = Executor::new(deployment);
        match self {
            PaperApp::KMeans => exec.run(&fg_apps::kmeans::KMeans::paper(7), dataset).report,
            PaperApp::Em => exec.run(&fg_apps::em::Em::paper(7), dataset).report,
            PaperApp::Knn => exec.run(&fg_apps::knn::Knn::paper(7), dataset).report,
            PaperApp::Vortex => exec.run(&fg_apps::vortex::VortexDetect::default(), dataset).report,
            PaperApp::Defect => {
                let app = fg_apps::defect::DefectDetect::for_dataset(dataset);
                exec.run(&app, dataset).report
            }
            PaperApp::Apriori => exec.run(&fg_apps::apriori::Apriori::standard(), dataset).report,
            PaperApp::Ann => exec.run(&fg_apps::ann::AnnTrain::paper(7), dataset).report,
        }
    }

    /// Execute with tracing enabled, returning the measured report plus
    /// the structured trace of the run. The report is bit-identical to
    /// what [`PaperApp::execute`] returns for the same inputs — tracing
    /// observes the run, it never perturbs it.
    pub fn execute_traced(
        &self,
        deployment: Deployment,
        dataset: &Dataset,
    ) -> (ExecutionReport, Trace) {
        let exec = Executor::new(deployment);
        match self {
            PaperApp::KMeans => {
                let (r, t) = exec.run_traced(&fg_apps::kmeans::KMeans::paper(7), dataset);
                (r.report, t)
            }
            PaperApp::Em => {
                let (r, t) = exec.run_traced(&fg_apps::em::Em::paper(7), dataset);
                (r.report, t)
            }
            PaperApp::Knn => {
                let (r, t) = exec.run_traced(&fg_apps::knn::Knn::paper(7), dataset);
                (r.report, t)
            }
            PaperApp::Vortex => {
                let (r, t) = exec.run_traced(&fg_apps::vortex::VortexDetect::default(), dataset);
                (r.report, t)
            }
            PaperApp::Defect => {
                let app = fg_apps::defect::DefectDetect::for_dataset(dataset);
                let (r, t) = exec.run_traced(&app, dataset);
                (r.report, t)
            }
            PaperApp::Apriori => {
                let (r, t) = exec.run_traced(&fg_apps::apriori::Apriori::standard(), dataset);
                (r.report, t)
            }
            PaperApp::Ann => {
                let (r, t) = exec.run_traced(&fg_apps::ann::AnnTrain::paper(7), dataset);
                (r.report, t)
            }
        }
    }

    /// Execute under an injected fault `schedule` (recovery tuned by
    /// `options`), returning the measured report. Same applications and
    /// fixed parameters as [`PaperApp::execute`], so an empty schedule
    /// reproduces it bit for bit.
    pub fn execute_with_faults(
        &self,
        deployment: Deployment,
        dataset: &Dataset,
        schedule: &FaultSchedule,
        options: &FaultOptions,
    ) -> ExecutionReport {
        let exec = Executor::new(deployment);
        match self {
            PaperApp::KMeans => {
                exec.run_with_faults(
                    &fg_apps::kmeans::KMeans::paper(7),
                    dataset,
                    schedule,
                    options,
                    None,
                )
                .report
            }
            PaperApp::Em => {
                exec.run_with_faults(&fg_apps::em::Em::paper(7), dataset, schedule, options, None)
                    .report
            }
            PaperApp::Knn => {
                exec.run_with_faults(&fg_apps::knn::Knn::paper(7), dataset, schedule, options, None)
                    .report
            }
            PaperApp::Vortex => {
                exec.run_with_faults(
                    &fg_apps::vortex::VortexDetect::default(),
                    dataset,
                    schedule,
                    options,
                    None,
                )
                .report
            }
            PaperApp::Defect => {
                let app = fg_apps::defect::DefectDetect::for_dataset(dataset);
                exec.run_with_faults(&app, dataset, schedule, options, None).report
            }
            PaperApp::Apriori => {
                exec.run_with_faults(
                    &fg_apps::apriori::Apriori::standard(),
                    dataset,
                    schedule,
                    options,
                    None,
                )
                .report
            }
            PaperApp::Ann => {
                exec.run_with_faults(
                    &fg_apps::ann::AnnTrain::paper(7),
                    dataset,
                    schedule,
                    options,
                    None,
                )
                .report
            }
        }
    }

    /// Traced variant of [`PaperApp::execute_with_faults`]: same
    /// execution, plus the structured trace (recovery spans included).
    pub fn execute_with_faults_traced(
        &self,
        deployment: Deployment,
        dataset: &Dataset,
        schedule: &FaultSchedule,
        options: &FaultOptions,
    ) -> (ExecutionReport, Trace) {
        let exec = Executor::new(deployment);
        match self {
            PaperApp::KMeans => {
                let (r, t) = exec.run_with_faults_traced(
                    &fg_apps::kmeans::KMeans::paper(7),
                    dataset,
                    schedule,
                    options,
                    None,
                );
                (r.report, t)
            }
            PaperApp::Em => {
                let (r, t) = exec.run_with_faults_traced(
                    &fg_apps::em::Em::paper(7),
                    dataset,
                    schedule,
                    options,
                    None,
                );
                (r.report, t)
            }
            PaperApp::Knn => {
                let (r, t) = exec.run_with_faults_traced(
                    &fg_apps::knn::Knn::paper(7),
                    dataset,
                    schedule,
                    options,
                    None,
                );
                (r.report, t)
            }
            PaperApp::Vortex => {
                let (r, t) = exec.run_with_faults_traced(
                    &fg_apps::vortex::VortexDetect::default(),
                    dataset,
                    schedule,
                    options,
                    None,
                );
                (r.report, t)
            }
            PaperApp::Defect => {
                let app = fg_apps::defect::DefectDetect::for_dataset(dataset);
                let (r, t) = exec.run_with_faults_traced(&app, dataset, schedule, options, None);
                (r.report, t)
            }
            PaperApp::Apriori => {
                let (r, t) = exec.run_with_faults_traced(
                    &fg_apps::apriori::Apriori::standard(),
                    dataset,
                    schedule,
                    options,
                    None,
                );
                (r.report, t)
            }
            PaperApp::Ann => {
                let (r, t) = exec.run_with_faults_traced(
                    &fg_apps::ann::AnnTrain::paper(7),
                    dataset,
                    schedule,
                    options,
                    None,
                );
                (r.report, t)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::pentium_deployment;

    #[test]
    fn names_roundtrip() {
        for app in PaperApp::PAPER_FIVE.iter().chain([PaperApp::Apriori, PaperApp::Ann].iter()) {
            assert_eq!(PaperApp::parse(app.name()), Some(*app));
        }
        assert_eq!(PaperApp::parse("nope"), None);
    }

    #[test]
    fn every_app_generates_and_executes() {
        for app in PaperApp::PAPER_FIVE {
            let ds = app.generate("drive", 8.0, 0.01, 3);
            let report = app.execute(pentium_deployment(2, 4, 1e6), &ds);
            assert_eq!(report.app, app.name());
            assert!(report.total().as_secs_f64() > 0.0);
        }
    }
}
