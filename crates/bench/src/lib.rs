//! # fg-bench — experiment harness
//!
//! Regenerates every experiment figure of the paper's evaluation (§5)
//! plus ablations, printing the same series the paper plots (relative
//! prediction error per configuration) and persisting machine-readable
//! results. See `src/bin/figures.rs` for the CLI and `benches/` for the
//! Criterion microbenchmarks.

#![warn(missing_docs)]

pub mod apps;
pub mod figures;
pub mod scenario;
pub mod table;

pub use apps::PaperApp;
pub use figures::FigureEntry;
pub use scenario::{pentium_deployment, FIGURE_SCALE};
pub use table::Figure;
