//! Figure results: tabular containers, text rendering, JSON persistence.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One regenerated figure: a labeled table of relative prediction errors
/// (percent), mirroring a bar group or line series of the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure {
    /// Identifier ("fig2", "sc-table", "ablate-robj", ...).
    pub id: String,
    /// Human-readable title echoing the paper's caption.
    pub title: String,
    /// Column headers (after the row-label column).
    pub columns: Vec<String>,
    /// Rows: label plus one value per column (`NaN` = not applicable;
    /// serialized as JSON `null` and restored as `NaN`).
    #[serde(with = "nan_as_null")]
    pub rows: Vec<(String, Vec<f64>)>,
    /// Footnotes (measured context: totals, factors, ...).
    pub notes: Vec<String>,
}

impl Figure {
    /// Render as an aligned text table with percentages.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {}", self.id, self.title);
        let label_w = self.rows.iter().map(|(l, _)| l.len()).chain([9]).max().unwrap();
        let col_w = self.columns.iter().map(|c| c.len()).chain([8]).max().unwrap();
        let _ = write!(out, "{:label_w$}", "");
        for c in &self.columns {
            let _ = write!(out, "  {c:>col_w$}");
        }
        let _ = writeln!(out);
        for (label, values) in &self.rows {
            let _ = write!(out, "{label:label_w$}");
            for v in values {
                if v.is_nan() {
                    let _ = write!(out, "  {:>col_w$}", "-");
                } else {
                    let _ = write!(out, "  {:>col_w$}", format!("{:.2}%", v * 100.0));
                }
            }
            let _ = writeln!(out);
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }

    /// Render as grouped horizontal ASCII bar charts — the visual shape
    /// of the paper's figures. Bars are scaled to the table's maximum.
    pub fn render_bars(&self) -> String {
        const WIDTH: usize = 46;
        let max = self.max_value().max(1e-12);
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {}", self.id, self.title);
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(self.columns.iter().map(|c| c.len()))
            .max()
            .unwrap_or(8);
        for (label, values) in &self.rows {
            let _ = writeln!(out, "{label}");
            for (col, v) in self.columns.iter().zip(values.iter()) {
                if v.is_nan() {
                    continue;
                }
                let cells = ((v / max) * WIDTH as f64).round() as usize;
                let _ = writeln!(
                    out,
                    "  {col:>label_w$} |{:<WIDTH$}| {:.2}%",
                    "#".repeat(cells),
                    v * 100.0
                );
            }
        }
        out
    }

    /// Largest finite value in the table (for assertions on error bounds).
    pub fn max_value(&self) -> f64 {
        self.rows
            .iter()
            .flat_map(|(_, vs)| vs.iter())
            .copied()
            .filter(|v| v.is_finite())
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// All finite values in one named column.
    pub fn column_values(&self, column: &str) -> Vec<f64> {
        let idx = self
            .columns
            .iter()
            .position(|c| c == column)
            .unwrap_or_else(|| panic!("no column {column:?} in figure {}", self.id));
        self.rows.iter().map(|(_, vs)| vs[idx]).filter(|v| v.is_finite()).collect()
    }
}

/// JSON has no NaN; not-applicable cells round-trip as `null`.
mod nan_as_null {
    use serde::{Deserialize, Error, Serialize, Value};

    pub fn to_value(rows: &[(String, Vec<f64>)]) -> Value {
        let mapped: Vec<(&String, Vec<Option<f64>>)> = rows
            .iter()
            .map(|(l, vs)| {
                (l, vs.iter().map(|v| if v.is_nan() { None } else { Some(*v) }).collect())
            })
            .collect();
        mapped.to_value()
    }

    pub fn from_value(value: &Value) -> Result<Vec<(String, Vec<f64>)>, Error> {
        let mapped: Vec<(String, Vec<Option<f64>>)> = Deserialize::from_value(value)?;
        Ok(mapped
            .into_iter()
            .map(|(l, vs)| (l, vs.into_iter().map(|v| v.unwrap_or(f64::NAN)).collect()))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Figure {
        Figure {
            id: "t".into(),
            title: "test".into(),
            columns: vec!["a".into(), "b".into()],
            rows: vec![("r1".into(), vec![0.05, 0.10]), ("r2".into(), vec![0.01, f64::NAN])],
            notes: vec!["hello".into()],
        }
    }

    #[test]
    fn render_contains_all_cells() {
        let s = fig().render();
        assert!(s.contains("5.00%"));
        assert!(s.contains("10.00%"));
        assert!(s.contains("1.00%"));
        assert!(s.contains(" -"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    fn max_value_ignores_nan() {
        assert_eq!(fig().max_value(), 0.10);
    }

    #[test]
    fn column_extraction() {
        assert_eq!(fig().column_values("a"), vec![0.05, 0.01]);
        assert_eq!(fig().column_values("b"), vec![0.10]);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn missing_column_panics() {
        fig().column_values("zzz");
    }

    #[test]
    fn bar_rendering_scales_to_the_maximum() {
        let s = fig().render_bars();
        // The 0.10 cell is the maximum: a full-width bar of 46 '#'.
        assert!(s.contains(&"#".repeat(46)), "{s}");
        // The 0.05 cell gets half of that.
        assert!(s.contains(&format!("|{:<46}| 5.00%", "#".repeat(23))), "{s}");
        // NaN cells render no bar line.
        assert_eq!(s.matches('|').count(), 6, "{s}");
    }

    #[test]
    fn json_roundtrip_preserves_nan_cells() {
        let f = fig();
        let json = serde_json::to_string(&f).expect("serialize");
        assert!(json.contains("null"), "NaN must serialize as null: {json}");
        let back: Figure = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.rows[0].1, f.rows[0].1);
        assert!(back.rows[1].1[1].is_nan());
        assert_eq!(back.columns, f.columns);
    }
}
