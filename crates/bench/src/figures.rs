//! The experiment behind every figure of the paper's evaluation (§5),
//! plus ablations of the model's design choices.
//!
//! Every function runs real (simulated-time) executions and returns a
//! [`Figure`] of relative prediction errors. See DESIGN.md for the
//! experiment index and EXPERIMENTS.md for recorded outputs.

use crate::apps::PaperApp;
use crate::scenario::{
    collect_profile, opteron_deployment, pentium_deployment, predict_all_models,
    sweep_configurations, DEFAULT_WAN_BW, FIGURE_SCALE,
};
use crate::table::Figure;
use fg_cluster::Configuration;
use fg_middleware::FaultOptions;
use fg_predict::{
    relative_error, ComputeModel, GlobalReduceClass, InterconnectParams, Profile, RObjSizeClass,
    ScalingFactors, Target,
};
use fg_sim::FaultSchedule;
use rayon::prelude::*;

/// Figures 2–6: prediction errors of the three compute models over the
/// paper configuration grid, base profile 1-1, one application.
pub fn model_error_figure(id: &str, app: PaperApp, nominal_mb: f64) -> Figure {
    let dataset = app.generate(&format!("{id}-data"), nominal_mb, FIGURE_SCALE, 42);
    let profile = collect_profile(app, pentium_deployment(1, 1, DEFAULT_WAN_BW), &dataset);
    let comparisons =
        sweep_configurations(app, &dataset, &profile, &Configuration::paper_grid(), DEFAULT_WAN_BW);
    Figure {
        id: id.into(),
        title: format!(
            "Prediction errors for {}, base profile 1-1, {:.0} MB dataset",
            app.name(),
            nominal_mb
        ),
        columns: ComputeModel::ALL.iter().map(|m| m.label().to_string()).collect(),
        rows: comparisons.iter().map(|c| (c.config.label(), c.errors().to_vec())).collect(),
        notes: vec![format!(
            "profile: t_d={:.1}s t_n={:.1}s t_c={:.1}s (t_ro={:.2}s t_g={:.2}s), {} passes",
            profile.t_disk,
            profile.t_network,
            profile.t_compute,
            profile.t_ro,
            profile.t_g,
            profile.passes
        )],
    }
}

/// The grid layout of figures 7–13: rows by data nodes, columns by
/// compute nodes, `NaN` where `c < n`.
fn node_grid(errors: impl Fn(Configuration) -> f64 + Sync) -> Vec<(String, Vec<f64>)> {
    let compute_counts = [1usize, 2, 4, 8, 16];
    [1usize, 2, 4, 8]
        .par_iter()
        .map(|&n| {
            let row: Vec<f64> = compute_counts
                .par_iter()
                .map(|&c| if c < n { f64::NAN } else { errors(Configuration::new(n, c)) })
                .collect();
            (format!("{n} data nodes"), row)
        })
        .collect()
}

const COMPUTE_COLUMNS: [&str; 5] = ["1 cn", "2 cn", "4 cn", "8 cn", "16 cn"];

/// Figures 7–8: dataset-size scaling. Profile at 1-1 on a small dataset;
/// predict a larger dataset on every configuration with the global
/// reduction model.
pub fn dataset_scaling_figure(id: &str, app: PaperApp, profile_mb: f64, target_mb: f64) -> Figure {
    let small = app.generate(&format!("{id}-small"), profile_mb, FIGURE_SCALE, 42);
    let large = app.generate(&format!("{id}-large"), target_mb, FIGURE_SCALE, 43);
    let profile = collect_profile(app, pentium_deployment(1, 1, DEFAULT_WAN_BW), &small);
    let site = pentium_deployment(1, 1, DEFAULT_WAN_BW).compute;
    let rows = node_grid(|cfg| {
        let actual = app
            .execute(pentium_deployment(cfg.data_nodes, cfg.compute_nodes, DEFAULT_WAN_BW), &large)
            .total()
            .as_secs_f64();
        let target = Target {
            data_nodes: cfg.data_nodes,
            compute_nodes: cfg.compute_nodes,
            wan_bw: DEFAULT_WAN_BW,
            dataset_bytes: large.logical_bytes(),
        };
        let predicted = predict_all_models(&profile, app, &site, &target)[2].total();
        relative_error(actual, predicted)
    });
    Figure {
        id: id.into(),
        title: format!(
            "Prediction errors for {} with {:.0} MB dataset, base profile 1-1 with {:.0} MB (global reduction model)",
            app.name(),
            target_mb,
            profile_mb
        ),
        columns: COMPUTE_COLUMNS.iter().map(|s| s.to_string()).collect(),
        rows,
        notes: vec![format!(
            "size ratio s_hat/s = {:.2}",
            large.logical_bytes() as f64 / small.logical_bytes() as f64
        )],
    }
}

/// Figures 9–10: network-bandwidth change. Profile at 1-1 with bandwidth
/// `b`; predict (and run) every configuration at `b_target`.
pub fn bandwidth_figure(
    id: &str,
    app: PaperApp,
    nominal_mb: f64,
    b_profile: f64,
    b_target: f64,
) -> Figure {
    let dataset = app.generate(&format!("{id}-data"), nominal_mb, FIGURE_SCALE, 42);
    let profile = collect_profile(app, pentium_deployment(1, 1, b_profile), &dataset);
    let site = pentium_deployment(1, 1, b_profile).compute;
    let rows = node_grid(|cfg| {
        let actual = app
            .execute(pentium_deployment(cfg.data_nodes, cfg.compute_nodes, b_target), &dataset)
            .total()
            .as_secs_f64();
        let target = Target {
            data_nodes: cfg.data_nodes,
            compute_nodes: cfg.compute_nodes,
            wan_bw: b_target,
            dataset_bytes: dataset.logical_bytes(),
        };
        let predicted = predict_all_models(&profile, app, &site, &target)[2].total();
        relative_error(actual, predicted)
    });
    Figure {
        id: id.into(),
        title: format!(
            "Prediction errors for {} with {:.0} Kbps, base profile 1-1 with {:.0} Kbps (global reduction model)",
            app.name(),
            b_target * 8.0 / 1e3,
            b_profile * 8.0 / 1e3
        ),
        columns: COMPUTE_COLUMNS.iter().map(|s| s.to_string()).collect(),
        rows,
        notes: vec![format!("bandwidth ratio b/b_hat = {:.2}", b_profile / b_target)],
    }
}

/// Cross-cluster scaling factors from representative applications (§3.4):
/// each representative runs on identical configurations on both clusters.
pub fn measure_scaling_factors(
    representatives: &[PaperApp],
    rep_mb: f64,
    config: Configuration,
) -> ScalingFactors {
    let pairs: Vec<(Profile, Profile)> = representatives
        .par_iter()
        .map(|rep| {
            let ds = rep.generate(&format!("rep-{}", rep.name()), rep_mb, FIGURE_SCALE, 17);
            let a = collect_profile(
                *rep,
                pentium_deployment(config.data_nodes, config.compute_nodes, DEFAULT_WAN_BW),
                &ds,
            );
            let b = collect_profile(
                *rep,
                opteron_deployment(config.data_nodes, config.compute_nodes, DEFAULT_WAN_BW),
                &ds,
            );
            (a, b)
        })
        .collect();
    ScalingFactors::measure(&pairs)
}

/// Figures 11–13: predictions for a different type of cluster. Base
/// profile on the Pentium cluster at `profile_cfg` with `profile_mb`;
/// representative applications supply the component scaling factors;
/// predictions target the Opteron cluster with `target_mb` on every
/// configuration.
pub fn hetero_figure(
    id: &str,
    app: PaperApp,
    profile_cfg: Configuration,
    profile_mb: f64,
    target_mb: f64,
    representatives: &[PaperApp],
) -> Figure {
    let profile_ds = app.generate(&format!("{id}-prof"), profile_mb, FIGURE_SCALE, 42);
    let target_ds = app.generate(&format!("{id}-target"), target_mb, FIGURE_SCALE, 43);
    let profile = collect_profile(
        app,
        pentium_deployment(profile_cfg.data_nodes, profile_cfg.compute_nodes, DEFAULT_WAN_BW),
        &profile_ds,
    );
    let factors = measure_scaling_factors(representatives, profile_mb, profile_cfg);
    // Interconnect parameters are those of the profile cluster: the
    // framework first predicts on cluster A, then scales to cluster B.
    let site_a = pentium_deployment(1, 1, DEFAULT_WAN_BW).compute;
    let rows = node_grid(|cfg| {
        let actual = app
            .execute(
                opteron_deployment(cfg.data_nodes, cfg.compute_nodes, DEFAULT_WAN_BW),
                &target_ds,
            )
            .total()
            .as_secs_f64();
        let target = Target {
            data_nodes: cfg.data_nodes,
            compute_nodes: cfg.compute_nodes,
            wan_bw: DEFAULT_WAN_BW,
            dataset_bytes: target_ds.logical_bytes(),
        };
        let on_a = predict_all_models(&profile, app, &site_a, &target)[2];
        let on_b = factors.apply(&on_a);
        relative_error(actual, on_b.total())
    });
    let rep_names: Vec<&str> = representatives.iter().map(|r| r.name()).collect();
    Figure {
        id: id.into(),
        title: format!(
            "Prediction errors for {} on a different cluster, {:.0} MB dataset, base profile {} with {:.0} MB",
            app.name(),
            target_mb,
            profile_cfg.label(),
            profile_mb
        ),
        columns: COMPUTE_COLUMNS.iter().map(|s| s.to_string()).collect(),
        rows,
        notes: vec![format!(
            "factors from {:?}: s_d={:.3} s_n={:.3} s_c={:.3}",
            rep_names, factors.disk, factors.network, factors.compute
        )],
    }
}

/// §5.4's observation table: per-application component scaling factors
/// between the two clusters (the compute factor varies by operation mix).
pub fn sc_table() -> Figure {
    let cfg = Configuration::new(4, 4);
    let rows: Vec<(String, Vec<f64>)> = PaperApp::PAPER_FIVE
        .par_iter()
        .map(|app| {
            let f = measure_scaling_factors(&[*app], 130.0, cfg);
            (app.name().to_string(), vec![f.disk, f.network, f.compute])
        })
        .collect();
    let avg_c = rows.iter().map(|(_, v)| v[2]).sum::<f64>() / rows.len() as f64;
    Figure {
        id: "sc-table".into(),
        title: "Component scaling factors Pentium -> Opteron per application (4-4, 130 MB)".into(),
        columns: vec!["s_d".into(), "s_n".into(), "s_c".into()],
        rows,
        notes: vec![format!("mean compute factor s_c = {avg_c:.3}")],
    }
}

/// Ablation: force the wrong reduction-object size class and compare the
/// predicted reduction-object communication time `T_ro` against the
/// measured one (validates class inference). EM carries the largest
/// objects (its dataset-proportional diagnostic buffer), so the wrong
/// class visibly misprices the gather.
pub fn ablate_robj_class() -> Figure {
    let app = PaperApp::Em;
    let small = app.generate("ab-robj-s", 350.0, FIGURE_SCALE, 42);
    let large = app.generate("ab-robj-l", 1400.0, FIGURE_SCALE, 43);
    let profile = collect_profile(app, pentium_deployment(1, 1, DEFAULT_WAN_BW), &small);
    let site = pentium_deployment(1, 1, DEFAULT_WAN_BW).compute;
    let ic = InterconnectParams::of_site(&site);
    let configs = [Configuration::new(1, 4), Configuration::new(2, 8), Configuration::new(8, 16)];
    let rows = configs
        .par_iter()
        .map(|cfg| {
            let actual_t_ro = app
                .execute(
                    pentium_deployment(cfg.data_nodes, cfg.compute_nodes, DEFAULT_WAN_BW),
                    &large,
                )
                .t_ro()
                .as_secs_f64();
            let target = Target {
                data_nodes: cfg.data_nodes,
                compute_nodes: cfg.compute_nodes,
                wan_bw: DEFAULT_WAN_BW,
                dataset_bytes: large.logical_bytes(),
            };
            let errs: Vec<f64> = [RObjSizeClass::Linear, RObjSizeClass::Constant]
                .iter()
                .map(|&obj| {
                    let predicted = fg_predict::model::predict_t_ro(&profile, &target, obj, &ic);
                    relative_error(actual_t_ro, predicted)
                })
                .collect();
            (cfg.label(), errs)
        })
        .collect();
    Figure {
        id: "ablate-robj".into(),
        title: "Ablation: error in predicted T_ro for EM at 1.4 GB from a 350 MB 1-1 profile, correct (linear) vs forced-constant object class".into(),
        columns: vec!["linear (correct)".into(), "constant (wrong)".into()],
        rows,
        notes: vec![],
    }
}

/// Ablation: force the wrong global-reduction class and compare the
/// predicted `T_g` against the measured one on a dataset-scaling
/// prediction. EM's global reduction is dataset-proportional
/// (constant-linear); pretending it scales with the node count instead
/// misprices it badly at 16 nodes.
pub fn ablate_tg_class() -> Figure {
    let app = PaperApp::Em;
    let small = app.generate("ab-tg-s", 350.0, FIGURE_SCALE, 42);
    let large = app.generate("ab-tg-l", 1400.0, FIGURE_SCALE, 43);
    let profile = collect_profile(app, pentium_deployment(1, 1, DEFAULT_WAN_BW), &small);
    let configs = [Configuration::new(1, 8), Configuration::new(4, 16), Configuration::new(8, 16)];
    let rows = configs
        .par_iter()
        .map(|cfg| {
            let actual_t_g = app
                .execute(
                    pentium_deployment(cfg.data_nodes, cfg.compute_nodes, DEFAULT_WAN_BW),
                    &large,
                )
                .t_g()
                .as_secs_f64();
            let target = Target {
                data_nodes: cfg.data_nodes,
                compute_nodes: cfg.compute_nodes,
                wan_bw: DEFAULT_WAN_BW,
                dataset_bytes: large.logical_bytes(),
            };
            let errs: Vec<f64> =
                [GlobalReduceClass::ConstantLinear, GlobalReduceClass::LinearConstant]
                    .iter()
                    .map(|&global| {
                        let predicted = fg_predict::model::predict_t_g(&profile, &target, global);
                        relative_error(actual_t_g, predicted)
                    })
                    .collect();
            (cfg.label(), errs)
        })
        .collect();
    Figure {
        id: "ablate-tg".into(),
        title: "Ablation: error in predicted T_g for EM at 1.4 GB from a 350 MB 1-1 profile, correct (constant-linear) vs forced linear-constant class".into(),
        columns: vec!["constant-linear (correct)".into(), "linear-constant (wrong)".into()],
        rows,
        notes: vec![],
    }
}

/// Ablation: disable the repository's shared-backplane cap and show the
/// disk model's error at eight data nodes collapse — the cap is what
/// makes retrieval sub-linear (the effect the paper reports for the
/// defect application).
pub fn ablate_disk_cap() -> Figure {
    let app = PaperApp::Defect;
    let dataset = app.generate("ab-disk", 1800.0, FIGURE_SCALE, 42);
    let configs = [Configuration::new(4, 8), Configuration::new(8, 8), Configuration::new(8, 16)];
    let rows = configs
        .par_iter()
        .map(|cfg| {
            let errs: Vec<f64> = [true, false]
                .iter()
                .map(|&capped| {
                    let mut profile_dep = pentium_deployment(1, 1, DEFAULT_WAN_BW);
                    let mut dep =
                        pentium_deployment(cfg.data_nodes, cfg.compute_nodes, DEFAULT_WAN_BW);
                    if !capped {
                        // Effectively unlimited (but finite) backplane.
                        profile_dep.repository.backplane_bw = 1e15;
                        dep.repository.backplane_bw = 1e15;
                    }
                    let site = dep.compute.clone();
                    let profile = collect_profile(app, profile_dep, &dataset);
                    let actual = app.execute(dep, &dataset).total().as_secs_f64();
                    let target = Target {
                        data_nodes: cfg.data_nodes,
                        compute_nodes: cfg.compute_nodes,
                        wan_bw: DEFAULT_WAN_BW,
                        dataset_bytes: dataset.logical_bytes(),
                    };
                    let predicted = predict_all_models(&profile, app, &site, &target)[2].total();
                    relative_error(actual, predicted)
                })
                .collect();
            (cfg.label(), errs)
        })
        .collect();
    Figure {
        id: "ablate-disk".into(),
        title: "Ablation: defect detection at 1.8 GB — global-reduction-model error with and without the repository backplane cap".into(),
        columns: vec!["capped backplane".into(), "uncapped".into()],
        rows,
        notes: vec![],
    }
}

/// Extension figure: the non-local caching plans — predicted vs actual
/// execution time for EM under local caching, a non-local caching site,
/// and origin re-fetch, on a storage-starved compute site. Values are
/// relative prediction errors; the note records the actual times, whose
/// ordering (local < non-local < refetch) is the point of the extension.
pub fn ext_cache_plans() -> Figure {
    use fg_cluster::{CacheSite, RepositorySite, Wan};
    use fg_predict::{predict_with_plan, CachePlan, ExecTimePredictor};
    let app = PaperApp::Em;
    let dataset = app.generate("ext-cache-data", 700.0, FIGURE_SCALE, 42);
    let profile_dep = pentium_deployment(1, 1, DEFAULT_WAN_BW);
    let profile = collect_profile(app, profile_dep.clone(), &dataset);
    let predictor = ExecTimePredictor {
        profile: profile.clone(),
        classes: app.classes(),
        interconnect: InterconnectParams::of_site(&profile_dep.compute),
        model: ComputeModel::GlobalReduction,
    };
    let cache_site =
        CacheSite::new(RepositorySite::pentium_repository("nearby", 8), 4, Wan::per_stream(60e6));
    let variants: Vec<(&str, u64, Option<CacheSite>)> = vec![
        ("local cache", u64::MAX, None),
        ("non-local cache", 1, Some(cache_site)),
        ("refetch origin", 1, None),
    ];
    let mut notes = Vec::new();
    let rows = variants
        .into_iter()
        .map(|(label, storage, cache)| {
            let mut dep = pentium_deployment(4, 8, DEFAULT_WAN_BW);
            dep.compute.node_storage_bytes = storage;
            dep.cache = cache;
            let actual = app.execute(dep.clone(), &dataset).total().as_secs_f64();
            let target = Target {
                data_nodes: 4,
                compute_nodes: 8,
                wan_bw: DEFAULT_WAN_BW,
                dataset_bytes: dataset.logical_bytes(),
            };
            let plan = CachePlan::for_deployment(&dep, dataset.logical_bytes(), profile.passes);
            let predicted =
                predict_with_plan(&predictor, &target, &plan, dep.compute.machine.disk_bw);
            notes
                .push(format!("{label}: actual {actual:.1}s, predicted {:.1}s", predicted.total()));
            (label.to_string(), vec![relative_error(actual, predicted.total())])
        })
        .collect();
    Figure {
        id: "ext-cache".into(),
        title: "Extension: cache-plan prediction accuracy for EM at 700 MB on a 4-8 deployment (storage-starved compute site)".into(),
        columns: vec!["prediction error".into()],
        rows,
        notes,
    }
}

/// Ablation: chunk-count granularity. The middleware statically assigns
/// chunks to compute nodes, so a chunk count that does not divide evenly
/// across a configuration leaves some nodes one chunk heavier — real
/// sub-linear speedup the linear compute model cannot see. Chunk counts
/// divisible by 16 (what the generators emit, standing in for
/// demand-driven chunk delivery) keep the model accurate.
pub fn ablate_granularity() -> Figure {
    let app = PaperApp::KMeans;
    let base = app.generate("ab-gran", 1400.0, FIGURE_SCALE, 42);
    let profile_ds = base.rechunk(64);
    let profile = collect_profile(app, pentium_deployment(1, 1, DEFAULT_WAN_BW), &profile_ds);
    let site = pentium_deployment(1, 1, DEFAULT_WAN_BW).compute;
    // Chunk counts: divisible by 16 vs awkward remainders at 16 nodes.
    let counts = [64usize, 67, 72, 80];
    let rows = counts
        .par_iter()
        .map(|&m| {
            let ds = base.rechunk(m);
            let errs: Vec<f64> = [Configuration::new(4, 8), Configuration::new(8, 16)]
                .iter()
                .map(|cfg| {
                    let actual = app
                        .execute(
                            pentium_deployment(cfg.data_nodes, cfg.compute_nodes, DEFAULT_WAN_BW),
                            &ds,
                        )
                        .total()
                        .as_secs_f64();
                    let target = Target {
                        data_nodes: cfg.data_nodes,
                        compute_nodes: cfg.compute_nodes,
                        wan_bw: DEFAULT_WAN_BW,
                        dataset_bytes: ds.logical_bytes(),
                    };
                    let predicted = predict_all_models(&profile, app, &site, &target)[2].total();
                    relative_error(actual, predicted)
                })
                .collect();
            (format!("{m} chunks"), errs)
        })
        .collect();
    Figure {
        id: "ablate-granularity".into(),
        title: "Ablation: k-means at 1.4 GB — global-reduction-model error vs chunk count (divisible-by-16 counts balance exactly)".into(),
        columns: vec!["4-8".into(), "8-16".into()],
        rows,
        notes: vec!["profile taken on the 64-chunk packaging".into()],
    }
}

/// Extension figure: phase-structured vs pipelined execution. The
/// paper's additive model describes a phase-structured runtime; this
/// measures how much chunk-level overlap would save (column 1: pipelined
/// time as a fraction of phased time) and how far the additive
/// global-reduction prediction over-shoots a pipelined system (column 2).
pub fn ext_pipeline() -> Figure {
    use fg_middleware::run_pipelined;
    let app = PaperApp::Vortex; // single pass: stages genuinely overlap
    let dataset = fg_apps::vortex::generate("ext-pipe-data", 710.0, FIGURE_SCALE, 42).0;
    let vx = fg_apps::vortex::VortexDetect::default();
    let profile = collect_profile(app, pentium_deployment(1, 1, DEFAULT_WAN_BW), &dataset);
    let site = pentium_deployment(1, 1, DEFAULT_WAN_BW).compute;
    let configs = [
        Configuration::new(1, 1),
        Configuration::new(2, 4),
        Configuration::new(4, 8),
        Configuration::new(8, 16),
    ];
    let rows = configs
        .par_iter()
        .map(|cfg| {
            let dep = pentium_deployment(cfg.data_nodes, cfg.compute_nodes, DEFAULT_WAN_BW);
            let phased = app.execute(dep.clone(), &dataset).total().as_secs_f64();
            let piped = run_pipelined(&dep, &vx, &dataset).total.as_secs_f64();
            let target = Target {
                data_nodes: cfg.data_nodes,
                compute_nodes: cfg.compute_nodes,
                wan_bw: DEFAULT_WAN_BW,
                dataset_bytes: dataset.logical_bytes(),
            };
            let predicted = predict_all_models(&profile, app, &site, &target)[2].total();
            (cfg.label(), vec![piped / phased, relative_error(piped, predicted)])
        })
        .collect();
    Figure {
        id: "ext-pipeline".into(),
        title: "Extension: pipelined vs phase-structured execution for vortex detection at 710 MB".into(),
        columns: vec!["pipelined / phased".into(), "additive model vs pipelined".into()],
        rows,
        notes: vec![
            "the additive model is exact for the phased runtime; its error vs the              pipelined runtime is the cost of the phase-structure assumption"
                .into(),
        ],
    }
}

/// Extension: prediction error and recovery overhead under fault
/// injection.
///
/// The paper's model predicts fault-free executions. This experiment
/// measures how far reality drifts from that prediction when faults are
/// injected: profile at 1-1, predict the 4-8 configuration with the
/// global-reduction model, then run 4-8 under seeded random fault
/// schedules (data-node crashes, WAN degradation windows, stragglers)
/// and report, per schedule, the measured total, the model's relative
/// error against it, and the recovery-time overhead. The fault-free row
/// is the control: its error is the model's intrinsic error, and the
/// gap between the rows is what fault-aware prediction would need to
/// close.
pub fn ext_faults() -> Figure {
    let app = PaperApp::KMeans;
    let (n, c) = (4usize, 8usize);
    let dataset = app.generate("ext-faults-data", 130.0, FIGURE_SCALE, 42);
    let profile = collect_profile(app, pentium_deployment(1, 1, DEFAULT_WAN_BW), &dataset);
    let deployment = pentium_deployment(n, c, DEFAULT_WAN_BW);
    let site = deployment.compute.clone();
    let target = Target {
        data_nodes: n,
        compute_nodes: c,
        wan_bw: DEFAULT_WAN_BW,
        dataset_bytes: dataset.logical_bytes(),
    };
    // ComputeModel::ALL order; [2] is the global-reduction model, the
    // paper's most faithful one.
    let predicted = predict_all_models(&profile, app, &site, &target)[2].total();
    let options = FaultOptions::default();

    let baseline = app.execute(deployment.clone(), &dataset);
    let horizon = baseline.total();
    let fault_free_total = baseline.total().as_secs_f64();
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    let mut notes: Vec<String> = Vec::new();
    rows.push(("fault-free".into(), vec![relative_error(fault_free_total, predicted), 0.0, 0.0]));
    notes.push(format!(
        "fault-free: measured {fault_free_total:.2}s, predicted {predicted:.2}s \
         (global-reduction model)"
    ));
    for seed in 1..=6u64 {
        let schedule = FaultSchedule::random(seed, n, c, horizon);
        let report = app.execute_with_faults(deployment.clone(), &dataset, &schedule, &options);
        let total = report.total().as_secs_f64();
        let recovery = report.t_recovery().as_secs_f64();
        rows.push((
            format!("fault seed {seed}"),
            vec![
                relative_error(total, predicted),
                recovery / total,
                total / fault_free_total - 1.0,
            ],
        ));
        notes.push(format!(
            "seed {seed}: measured {total:.2}s ({recovery:.2}s recovery), \
             {} crash(es), {} degradation window(s), {} straggler(s)",
            schedule.crashes.len(),
            schedule.degradations.len(),
            schedule.stragglers.len(),
        ));
    }
    Figure {
        id: "ext-faults".into(),
        title: format!(
            "Fault injection: prediction error and recovery overhead, {} on {n}-{c}",
            app.name()
        ),
        columns: vec![
            "model error".into(),
            "recovery share".into(),
            "overhead vs fault-free".into(),
        ],
        rows,
        notes,
    }
}

/// Extension: tracing fidelity and overhead.
///
/// For each paper application, runs the same execution untraced and
/// traced, then (a) reconstructs the execution report and the profile
/// from the trace and reports the worst component mismatch in integer
/// nanoseconds — the trace retraces the executor's exact arithmetic, so
/// this must be zero — and (b) reports the host-side wall-clock overhead
/// of collecting the trace (best-of-`REPEATS` on both sides, so the
/// ratio is noise-resistant).
pub fn ext_trace() -> Figure {
    use fg_middleware::ExecutionReport;
    use std::time::Instant;
    const REPEATS: usize = 5;
    let mut notes = Vec::new();
    let rows = PaperApp::PAPER_FIVE
        .iter()
        .map(|&app| {
            let dataset =
                app.generate(&format!("ext-trace-{}", app.name()), 130.0, FIGURE_SCALE, 42);
            let deployment = pentium_deployment(2, 4, DEFAULT_WAN_BW);
            let time = |f: &dyn Fn() -> ExecutionReport| {
                (0..REPEATS)
                    .map(|_| {
                        let t0 = Instant::now();
                        let r = f();
                        (t0.elapsed().as_secs_f64(), r)
                    })
                    .min_by(|a, b| a.0.total_cmp(&b.0))
                    .expect("at least one repeat")
            };
            let (plain_wall, plain) = time(&|| app.execute(deployment.clone(), &dataset));
            let (traced_wall, traced) =
                time(&|| app.execute_traced(deployment.clone(), &dataset).0);
            let (_, trace) = app.execute_traced(deployment.clone(), &dataset);
            assert_eq!(plain, traced, "tracing must not perturb the execution");
            let rebuilt = ExecutionReport::from_trace(&trace).expect("report from trace");
            let components = [
                (plain.t_disk(), rebuilt.t_disk()),
                (plain.t_network(), rebuilt.t_network()),
                (plain.t_compute(), rebuilt.t_compute()),
                (plain.t_ro(), rebuilt.t_ro()),
                (plain.t_g(), rebuilt.t_g()),
                (plain.t_recovery(), rebuilt.t_recovery()),
            ];
            let mismatch_ns = components
                .iter()
                .map(|(a, b)| a.as_nanos().abs_diff(b.as_nanos()))
                .max()
                .unwrap_or(0);
            let profile_drift = if Profile::from_trace(&trace).expect("profile from trace")
                == Profile::from_report(&plain)
            {
                0.0
            } else {
                1.0
            };
            let overhead = traced_wall / plain_wall - 1.0;
            notes.push(format!(
                "{}: untraced {:.1}ms, traced {:.1}ms ({} spans, {} passes)",
                app.name(),
                plain_wall * 1e3,
                traced_wall * 1e3,
                trace.spans.len(),
                plain.num_passes(),
            ));
            (app.name().to_string(), vec![mismatch_ns as f64, profile_drift, overhead])
        })
        .collect();
    Figure {
        id: "ext-trace".into(),
        title: "Extension: trace fidelity (report/profile reconstruction) and collection overhead, 130 MB datasets on 2-4".into(),
        columns: vec![
            "component mismatch (ns)".into(),
            "profile drift".into(),
            "trace overhead".into(),
        ],
        rows,
        notes,
    }
}

/// The seven applications the scheduler's workload mixes over: the
/// paper five plus the two extension apps.
pub const SCHED_APPS: [PaperApp; 7] = [
    PaperApp::KMeans,
    PaperApp::Em,
    PaperApp::Knn,
    PaperApp::Vortex,
    PaperApp::Defect,
    PaperApp::Apriori,
    PaperApp::Ann,
];

/// Profile every scheduler app on a small 1-1 run and package the
/// results as `fg-sched` prediction models. The profile WAN bandwidth
/// matches the demo grid's nominal per-stream bandwidth, so a first
/// placement on the fast repository sees a bandwidth ratio of one.
pub fn sched_models() -> Vec<(String, fg_sched::AppModel)> {
    SCHED_APPS
        .iter()
        .map(|&app| {
            let dataset = app.generate(&format!("ext-sched-{}", app.name()), 8.0, 0.01, 3);
            let profile = collect_profile(app, pentium_deployment(1, 1, 1e6), &dataset);
            (app.name().to_string(), fg_sched::AppModel { profile, classes: app.classes() })
        })
        .collect()
}

/// The scheduler run behind one `ext-sched` row.
pub fn sched_run(
    policy: fg_sched::Policy,
    load: fg_sched::LoadLevel,
) -> fg_sched::sched::SchedResult {
    let grid = fg_sched::GridSpec::demo(sched_models());
    let names: Vec<&str> = SCHED_APPS.iter().map(|a| a.name()).collect();
    let jobs = fg_sched::WorkloadSpec::preset(load, &names, 42).generate();
    fg_sched::Scheduler::new(grid, policy).run(&jobs)
}

/// Extension: multi-tenant scheduling over the prediction model.
///
/// Runs the three-tenant workload preset (seed 42) at three load levels
/// under each queueing discipline on the demo grid, with contention on
/// the shared WAN/ingress links and bandwidth feedback enabled. Per
/// run, reports the mean slowdown of completed jobs, the admission
/// precision (fraction of admitted jobs that met their deadline), the
/// mean relative error of the submission-time completion estimate, the
/// number of rejected jobs, and the number of invariant violations
/// (always zero on a healthy scheduler).
pub fn ext_sched() -> Figure {
    use fg_sched::{LoadLevel, Policy};
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for load in LoadLevel::ALL {
        for policy in Policy::ALL {
            let r = sched_run(policy, load);
            let submitted = r.outcomes.len();
            let admitted: Vec<_> = r.outcomes.iter().filter(|o| o.admitted).collect();
            let slowdowns: Vec<f64> = admitted.iter().filter_map(|o| o.slowdown()).collect();
            let mean_slowdown = slowdowns.iter().sum::<f64>() / slowdowns.len().max(1) as f64;
            let met = admitted.iter().filter(|o| o.met_deadline() == Some(true)).count();
            let precision = met as f64 / admitted.len().max(1) as f64;
            let errors: Vec<f64> = admitted.iter().filter_map(|o| o.completion_error()).collect();
            let mean_error = errors.iter().sum::<f64>() / errors.len().max(1) as f64;
            let rejected = submitted - admitted.len();
            rows.push((
                format!("{} {}", policy.name(), load.name()),
                vec![
                    mean_slowdown,
                    precision,
                    mean_error,
                    rejected as f64,
                    r.violations.len() as f64,
                ],
            ));
            notes.push(format!(
                "{} {}: {} jobs, {} admitted, makespan {:.0}s, max queue depth {}",
                policy.name(),
                load.name(),
                submitted,
                admitted.len(),
                r.makespan,
                r.trace.metrics.gauge("sched_queue_depth_max").unwrap_or(0.0),
            ));
        }
    }
    Figure {
        id: "ext-sched".into(),
        title: "Extension: multi-tenant scheduling — slowdown, admission precision, and completion-estimate error per policy at three load levels (three-tenant preset, seed 42)".into(),
        columns: vec![
            "mean slowdown".into(),
            "admission precision".into(),
            "completion estimate error".into(),
            "rejected jobs".into(),
            "violations".into(),
        ],
        rows,
        notes,
    }
}

/// The scheduler run behind one `ext-migrate` cell: the three-tenant
/// workload preset (seed 42) under FCFS-backfill with per-tenant
/// token-bucket quotas armed (generously, so the violation counter is
/// live but admission is unaffected), preemption enabled, and
/// optionally mid-run migration and a sustained collapse of the fast
/// repository's transfer paths.
pub fn migrate_run(
    policy: fg_sched::Policy,
    load: fg_sched::LoadLevel,
    migrate: bool,
    degrade: bool,
) -> fg_sched::sched::SchedResult {
    let grid = fg_sched::GridSpec::demo(sched_models());
    let names: Vec<&str> = SCHED_APPS.iter().map(|a| a.name()).collect();
    let jobs = fg_sched::WorkloadSpec::preset(load, &names, 42).generate();
    let quotas = vec![fg_sched::TenantQuota { capacity: 1000.0, refill_per_sec: 1.0 }; 3];
    let mut sched = fg_sched::Scheduler::new(grid, policy).with_quotas(quotas).with_preemption(2.0);
    if migrate {
        sched = sched.with_migration(fg_sched::MigrationConfig::default());
    }
    if degrade {
        sched = sched.with_degradation(fg_sched::Degradation { repo: 0, start: 0.0, factor: 0.1 });
    }
    sched.run(&jobs)
}

/// Extension: preemptive migration under bandwidth degradation.
///
/// At each load level, compares a migration-enabled run against a
/// stay-put run while the fast repository's transfer paths run at 10%
/// of nominal, plus a migration-enabled run under stable bandwidth as
/// the hysteresis control. Token-bucket quotas are armed in every run;
/// the violation counter must stay at zero.
pub fn ext_migrate() -> Figure {
    use fg_sched::{LoadLevel, Policy};
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for load in LoadLevel::ALL {
        let moved = migrate_run(Policy::FcfsBackfill, load, true, true);
        let stayed = migrate_run(Policy::FcfsBackfill, load, false, true);
        let stable = migrate_run(Policy::FcfsBackfill, load, true, false);
        let mean_slowdown = |r: &fg_sched::sched::SchedResult| {
            let s: Vec<f64> = r.outcomes.iter().filter_map(|o| o.slowdown()).collect();
            s.iter().sum::<f64>() / s.len().max(1) as f64
        };
        let quota_violations = [&moved, &stayed, &stable]
            .iter()
            .map(|r| r.trace.metrics.counter("sched_quota_violations").unwrap_or(0))
            .sum::<u64>();
        rows.push((
            load.name().to_string(),
            vec![
                mean_slowdown(&moved),
                mean_slowdown(&stayed),
                moved.trace.metrics.counter("sched_migrations").unwrap_or(0) as f64,
                stable.trace.metrics.counter("sched_migrations").unwrap_or(0) as f64,
                quota_violations as f64,
            ],
        ));
        notes.push(format!(
            "{}: makespan migrate {:.0}s vs stay {:.0}s vs stable {:.0}s; \
             {} preemptions in the migrating run; violations {}/{}/{}",
            load.name(),
            moved.makespan,
            stayed.makespan,
            stable.makespan,
            moved.trace.metrics.counter("sched_preemptions").unwrap_or(0),
            moved.violations.len(),
            stayed.violations.len(),
            stable.violations.len(),
        ));
    }
    Figure {
        id: "ext-migrate".into(),
        title: "Extension: preemptive migration — migrate vs stay-put mean slowdown under a sustained 10x degradation of the fast repository, with the stable-bandwidth hysteresis control (three-tenant preset, seed 42)".into(),
        columns: vec![
            "migrate slowdown".into(),
            "stay slowdown".into(),
            "migrations".into(),
            "stable migrations".into(),
            "quota violations".into(),
        ],
        rows,
        notes,
    }
}

/// Jobs for one `ext-workload` run: the shaped preset widened to 12
/// tenants × 25 jobs at the medium load level (seed 42) — enough
/// samples that a P99 and a tail-mass reading mean something, at the
/// same aggregate arrival rate for every shape so the columns compare
/// traffic *structure*, not offered load. Medium keeps the grid busy
/// but not saturated: EDF precision stays meaningful (a saturated grid
/// drags every shape's precision toward zero) while heavy tails and
/// bursts still separate clearly from uniform traffic.
pub fn workload_jobs(shape: fg_sched::WorkloadShape) -> Vec<fg_sched::JobSpec> {
    let names: Vec<&str> = SCHED_APPS.iter().map(|a| a.name()).collect();
    fg_sched::WorkloadSpec::shaped_scaled(shape, fg_sched::LoadLevel::Medium, &names, 42, 12, 25)
        .generate()
}

/// One plain `ext-workload` scheduler run over a shaped stream, with
/// the workload-shape instruments armed.
pub fn workload_run(
    policy: fg_sched::Policy,
    shape: fg_sched::WorkloadShape,
) -> fg_sched::sched::SchedResult {
    let grid = fg_sched::GridSpec::demo(sched_models());
    fg_sched::Scheduler::new(grid, policy).with_workload_metrics().run(&workload_jobs(shape))
}

/// The migration arm of `ext-workload`: FCFS-backfill with quotas and
/// preemption armed and the fast repository degraded to 10% — the
/// `migrate_run` experiment re-cast onto a shaped stream.
pub fn workload_migrate_run(
    shape: fg_sched::WorkloadShape,
    migrate: bool,
) -> fg_sched::sched::SchedResult {
    let grid = fg_sched::GridSpec::demo(sched_models());
    let quotas = vec![fg_sched::TenantQuota { capacity: 1000.0, refill_per_sec: 1.0 }; 12];
    let mut sched = fg_sched::Scheduler::new(grid, fg_sched::Policy::FcfsBackfill)
        .with_quotas(quotas)
        .with_preemption(2.0)
        .with_degradation(fg_sched::Degradation { repo: 0, start: 0.0, factor: 0.1 });
    if migrate {
        sched = sched.with_migration(fg_sched::MigrationConfig::default());
    }
    sched.run(&workload_jobs(shape))
}

/// Nearest-rank 99th percentile.
fn p99(mut v: Vec<f64>) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(f64::total_cmp);
    let rank = ((v.len() as f64 * 0.99).ceil() as usize).clamp(1, v.len());
    v[rank - 1]
}

/// Jain's fairness index over per-tenant quantities: 1 when everyone
/// gets the same, 1/n when one tenant gets everything.
fn jain(x: &[f64]) -> f64 {
    let sum: f64 = x.iter().sum();
    let sq: f64 = x.iter().map(|v| v * v).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (x.len() as f64 * sq)
}

/// Extension: every subsystem re-measured under trace-shaped traffic.
///
/// One row per workload shape (the legacy uniform preset, the
/// heavy-tail preset, the bag-of-tasks burst preset) at identical
/// aggregate arrival rates. Per shape: the FCFS P99 slowdown (tail
/// latency under the most naive policy), EDF admission precision and
/// completion-estimate error (does predictor-driven admission survive
/// heavy tails?), the migration benefit under a degraded fast
/// repository (stay-put mean slowdown over migrate mean slowdown), the
/// Jain fairness index of per-tenant admitted jobs in the quota-armed
/// run, and the total invariant violations across all runs (always
/// zero on a healthy scheduler).
pub fn ext_workload() -> Figure {
    use fg_sched::{Policy, WorkloadShape};
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for shape in WorkloadShape::ALL {
        let jobs = workload_jobs(shape);
        let stats = fg_sched::replay::stats_of(&jobs);
        let fcfs = workload_run(Policy::Fcfs, shape);
        let edf = workload_run(Policy::EdfAdmit, shape);
        let moved = workload_migrate_run(shape, true);
        let stayed = workload_migrate_run(shape, false);

        let fcfs_p99 = p99(fcfs.outcomes.iter().filter_map(|o| o.slowdown()).collect());
        let edf_admitted: Vec<_> = edf.outcomes.iter().filter(|o| o.admitted).collect();
        let met = edf_admitted.iter().filter(|o| o.met_deadline() == Some(true)).count();
        let precision = met as f64 / edf_admitted.len().max(1) as f64;
        let errors: Vec<f64> = edf_admitted.iter().filter_map(|o| o.completion_error()).collect();
        let mean_error = errors.iter().sum::<f64>() / errors.len().max(1) as f64;

        let mean_slowdown = |r: &fg_sched::sched::SchedResult| {
            let s: Vec<f64> = r.outcomes.iter().filter_map(|o| o.slowdown()).collect();
            s.iter().sum::<f64>() / s.len().max(1) as f64
        };
        let benefit = mean_slowdown(&stayed) / mean_slowdown(&moved);

        let mut admitted_per_tenant = vec![0.0f64; 12];
        for o in moved.outcomes.iter().filter(|o| o.admitted) {
            admitted_per_tenant[o.tenant] += 1.0;
        }
        let fairness = jain(&admitted_per_tenant);

        let quota_violations = [&moved, &stayed]
            .iter()
            .map(|r| r.trace.metrics.counter("sched_quota_violations").unwrap_or(0))
            .sum::<u64>();
        let violations = fcfs.violations.len()
            + edf.violations.len()
            + moved.violations.len()
            + stayed.violations.len()
            + quota_violations as usize;

        rows.push((
            shape.name().to_string(),
            vec![fcfs_p99, precision, mean_error, benefit, fairness, violations as f64],
        ));
        notes.push(format!(
            "{}: {} jobs, tail mass top1 {:.3}, burst depth {}, p99 dataset {:.0} MB; \
             edf rejected {}, migrations {}, fcfs makespan {:.0}s",
            shape.name(),
            stats.jobs,
            stats.tail_mass_top1,
            stats.burst_depth_max,
            stats.p99_bytes as f64 / 1e6,
            edf.outcomes.iter().filter(|o| !o.admitted).count(),
            moved.trace.metrics.counter("sched_migrations").unwrap_or(0),
            fcfs.makespan,
        ));
    }
    Figure {
        id: "ext-workload".into(),
        title: "Extension: trace-shaped workloads — FCFS tail latency, EDF admission precision, migration benefit, and quota fairness under heavy-tailed and bursty traffic vs the legacy uniform preset (12 tenants x 25 jobs, medium aggregate rate, seed 42)".into(),
        columns: vec![
            "fcfs p99 slowdown".into(),
            "edf precision".into(),
            "edf estimate error".into(),
            "migration benefit".into(),
            "quota fairness".into(),
            "violations".into(),
        ],
        rows,
        notes,
    }
}

/// One telemetry-armed scheduler run over a shaped stream. With
/// `degrade` true, repository 0's WAN collapses to 15% of nominal from
/// the stream's median arrival onward — the seeded fault the drift
/// detector must catch. Returns the run and the fault onset instant.
pub fn obs_run(
    shape: fg_sched::WorkloadShape,
    degrade: bool,
) -> (fg_sched::sched::SchedResult, f64) {
    let jobs = workload_jobs(shape);
    let mut arrivals: Vec<f64> = jobs.iter().map(|j| j.arrival).collect();
    arrivals.sort_by(f64::total_cmp);
    let onset = arrivals[arrivals.len() / 2];
    let grid = fg_sched::GridSpec::demo(sched_models());
    let mut sched = fg_sched::Scheduler::new(grid, fg_sched::Policy::Fcfs)
        .with_telemetry(fg_sched::TelemetryConfig::default());
    if degrade {
        sched =
            sched.with_degradation(fg_sched::Degradation { repo: 0, start: onset, factor: 0.15 });
    }
    (sched.run(&jobs), onset)
}

/// Measured overhead of a metrics subscription on the serve quote
/// path: the ratio of subscribed to unsubscribed wall-clock for the
/// same quote stream, minus one. The steady-state cost of a
/// subscription is one atomic epoch load per response, so this should
/// be indistinguishable from noise.
fn quote_overhead(jobs: &[fg_sched::JobSpec], quotes: usize, reps: usize) -> f64 {
    use std::time::Instant;
    let grid = fg_sched::GridSpec::demo(sched_models());
    let apps: Vec<String> = grid.apps.iter().map(|(n, _)| n.clone()).collect();
    let server =
        fg_serve::Server::start(fg_sched::Scheduler::new(grid, fg_sched::Policy::EdfAdmit));
    // Load the plane with real content first: every submission below
    // feeds the ledger and the SLO gauges the snapshots carry.
    let mut feeder = fg_serve::ServeClient::connect(&server);
    for job in jobs {
        feeder.submit(job.clone()).expect("submit");
    }
    let mut plain_client = fg_serve::ServeClient::connect(&server);
    let mut sub_client = fg_serve::ServeClient::connect(&server);
    sub_client.subscribe_metrics(0).expect("subscribe");
    let burst = |client: &mut fg_serve::ServeClient| {
        let start = Instant::now();
        for q in 0..quotes {
            let app = &apps[q % apps.len()];
            let bytes = 1u64 << (20 + q % 12);
            std::hint::black_box(client.quote(app, bytes, 2.0).expect("quote"));
        }
        start.elapsed().as_secs_f64()
    };
    // Interleave the two measurements rep by rep so machine-load drift
    // over the measurement window hits both sides equally, and take
    // each side's fastest rep (noise only ever slows a burst down).
    let (mut plain, mut subscribed) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        plain = plain.min(burst(&mut plain_client));
        subscribed = subscribed.min(burst(&mut sub_client));
    }
    drop(plain_client);
    drop(sub_client);
    drop(feeder);
    server.shutdown();
    subscribed / plain - 1.0
}

/// Extension: the live telemetry plane — drift detection under a
/// seeded WAN degradation.
///
/// One row per workload shape. Per shape: alarms on the fault-free
/// run (the false-positive count, always zero), alarms on the
/// degraded run, how many of those blame a component other than the
/// network (always zero — only the WAN lied), how many degraded-
/// repository completions elapsed between fault onset and the first
/// alarm (detection latency in jobs), and the measured overhead a
/// metrics subscription adds to the serve quote path.
pub fn ext_obs() -> Figure {
    use fg_sched::{Component, WorkloadShape};
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for shape in WorkloadShape::ALL {
        let (clean, _) = obs_run(shape, false);
        let (degraded, onset) = obs_run(shape, true);
        let clean_report = clean.telemetry.expect("telemetry armed");
        let report = degraded.telemetry.expect("telemetry armed");
        let alarms = &report.snapshot.alarms;
        let off_net = alarms.iter().filter(|a| a.component != Component::Net).count();

        // The degraded repository's wire name, for attributing samples.
        let repo_name = degraded
            .outcomes
            .iter()
            .find_map(|o| o.placement.as_ref().filter(|p| p.repo == 0).map(|p| p.repo_name.clone()))
            .expect("some job ran on repository 0");
        let first = alarms.first();
        let jobs_to_alarm = first.map_or(f64::NAN, |a| {
            report
                .ledger
                .tail(report.ledger.total() as usize)
                .iter()
                .filter(|s| s.repo == repo_name && s.finish > onset && s.finish <= a.at)
                .count() as f64
        });

        let overhead = quote_overhead(&workload_jobs(shape), 4000, 9);

        rows.push((
            shape.name().to_string(),
            vec![
                clean_report.snapshot.alarms.len() as f64,
                alarms.len() as f64,
                off_net as f64,
                jobs_to_alarm,
                overhead,
            ],
        ));
        notes.push(format!(
            "{}: fault onset {:.0}s (factor 0.15, {repo_name}); first alarm {}; \
             {} ledger samples, {} on the degraded repository",
            shape.name(),
            onset,
            first.map_or("never".into(), |a| format!(
                "at {:.0}s (job {}, residual {:.2}, z {:.1})",
                a.at, a.job_id, a.residual, a.z
            )),
            report.ledger.total(),
            report
                .ledger
                .tail(report.ledger.total() as usize)
                .iter()
                .filter(|s| s.repo == repo_name)
                .count(),
        ));
    }
    Figure {
        id: "ext-obs".into(),
        title: "Extension: live telemetry — drift detection under a seeded WAN degradation \
                (repository 0 collapses to 15% bandwidth at the median arrival), plus the \
                measured cost of a metrics subscription on the serve quote path"
            .into(),
        columns: vec![
            "clean alarms".into(),
            "alarms".into(),
            "off-net alarms".into(),
            "jobs to alarm".into(),
            "subscriber overhead".into(),
        ],
        rows,
        notes,
    }
}

/// Deterministic incident bundles for the `ext-obs` export: replay
/// each shaped stream through the sans-IO server engine with the same
/// seeded degradation the figure uses, and hand back every bundle the
/// flight recorder cut, rendered as self-contained JSONL.
pub fn obs_incident_bundles(shape: fg_sched::WorkloadShape) -> Vec<String> {
    let jobs = workload_jobs(shape);
    let mut arrivals: Vec<f64> = jobs.iter().map(|j| j.arrival).collect();
    arrivals.sort_by(f64::total_cmp);
    let onset = arrivals[arrivals.len() / 2];
    let grid = fg_sched::GridSpec::demo(sched_models());
    let sched = fg_sched::Scheduler::new(grid, fg_sched::Policy::Fcfs)
        .with_telemetry(fg_sched::TelemetryConfig::default())
        .with_degradation(fg_sched::Degradation { repo: 0, start: onset, factor: 0.15 });
    let mut engine = fg_serve::ServerEngine::new(sched);
    for job in jobs {
        engine.handle(fg_serve::Request::Submit { job });
    }
    engine.handle(fg_serve::Request::Drain);
    engine.take_incidents().iter().map(|b| b.to_jsonl()).collect()
}

/// Freeze the scheduler's bandwidth feedback for the `ext-learn`
/// predictor comparison: `Ewma` requires a strictly positive alpha,
/// and at 1e-12 the estimate never measurably moves off nominal — so
/// the drifted link is visible only to a predictor that *learns*, not
/// to the scheduler's own bandwidth re-estimation.
const LEARN_FROZEN_ALPHA: f64 = 1e-12;

/// One `ext-learn` arm: the `ext-obs` seeded fault (repository 0's WAN
/// collapses to 15% at the median arrival) with bandwidth feedback
/// frozen and an optional pluggable predictor installed. Returns the
/// run and the fault onset instant.
pub fn learn_drift_run(
    shape: fg_sched::WorkloadShape,
    policy: fg_sched::Policy,
    predictor: Option<std::sync::Arc<dyn fg_predict::Predictor>>,
) -> (fg_sched::sched::SchedResult, f64) {
    let jobs = workload_jobs(shape);
    let mut arrivals: Vec<f64> = jobs.iter().map(|j| j.arrival).collect();
    arrivals.sort_by(f64::total_cmp);
    let onset = arrivals[arrivals.len() / 2];
    let grid = fg_sched::GridSpec::demo(sched_models());
    let mut sched = fg_sched::Scheduler::new(grid, policy)
        .with_ewma_alpha(LEARN_FROZEN_ALPHA)
        .with_telemetry(fg_sched::TelemetryConfig::default())
        .with_degradation(fg_sched::Degradation { repo: 0, start: onset, factor: 0.15 });
    if let Some(p) = predictor {
        sched = sched.with_predictor(p);
    }
    (sched.run(&jobs), onset)
}

/// Mean relative total-time prediction error over a run's post-onset
/// ledger samples — all of them, both repositories, because a trained
/// predictor steers work away from the drifted link and the accuracy
/// that matters for placement is over everything the scheduler ran.
fn learn_post_onset_err(r: &fg_sched::sched::SchedResult, onset: f64) -> f64 {
    let ledger = &r.telemetry.as_ref().expect("telemetry armed").ledger;
    let errs: Vec<f64> = ledger
        .tail(ledger.total() as usize)
        .iter()
        .filter(|s| s.finish > onset)
        .map(|s| {
            let obs: f64 = s.observed.iter().sum();
            let pred: f64 = s.predicted.iter().sum();
            (obs - pred).abs() / obs
        })
        .collect();
    errs.iter().sum::<f64>() / errs.len().max(1) as f64
}

/// EDF admission precision (deadlines met over jobs admitted).
fn edf_precision(r: &fg_sched::sched::SchedResult) -> f64 {
    let admitted: Vec<_> = r.outcomes.iter().filter(|o| o.admitted).collect();
    let met = admitted.iter().filter(|o| o.met_deadline() == Some(true)).count();
    met as f64 / admitted.len().max(1) as f64
}

/// The `workload_migrate_run` arm under a pluggable predictor, live
/// feedback (migration's trigger *is* the bandwidth re-estimate).
fn learn_migrate_run(
    shape: fg_sched::WorkloadShape,
    migrate: bool,
    predictor: std::sync::Arc<dyn fg_predict::Predictor>,
) -> fg_sched::sched::SchedResult {
    let grid = fg_sched::GridSpec::demo(sched_models());
    let quotas = vec![fg_sched::TenantQuota { capacity: 1000.0, refill_per_sec: 1.0 }; 12];
    let mut sched = fg_sched::Scheduler::new(grid, fg_sched::Policy::FcfsBackfill)
        .with_predictor(predictor)
        .with_quotas(quotas)
        .with_preemption(2.0)
        .with_degradation(fg_sched::Degradation { repo: 0, start: 0.0, factor: 0.1 });
    if migrate {
        sched = sched.with_migration(fg_sched::MigrationConfig::default());
    }
    sched.run(&workload_jobs(shape))
}

/// Extension: online learned predictors vs the frozen analytical model
/// under the seeded WAN drift.
///
/// One row per workload shape, three predictor arms per row — the
/// analytical model with bandwidth feedback frozen (so the drift stays
/// invisible to it), the EWMA-residual-corrected hybrid, and the
/// per-(app, repo) ridge regression — each trained online by its own
/// run. Per shape: post-onset prediction error per arm, EDF admission
/// precision under the frozen and hybrid arms, the hybrid arm's
/// makespan relative to the frozen arm (trained predictors steer work
/// off the drifted link, trading makespan for accuracy — reported, not
/// hidden), and the migration benefit with the hybrid installed.
pub fn ext_learn() -> Figure {
    use fg_learn::{HybridPredictor, LearnedPredictor};
    use fg_sched::{Policy, WorkloadShape};
    use std::sync::Arc;
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for shape in WorkloadShape::ALL {
        let (frozen, onset) = learn_drift_run(shape, Policy::Fcfs, None);
        let (hybrid, _) =
            learn_drift_run(shape, Policy::Fcfs, Some(Arc::new(HybridPredictor::default())));
        let learned_model = Arc::new(LearnedPredictor::default());
        let (learned, _) = learn_drift_run(shape, Policy::Fcfs, Some(learned_model.clone()));

        let e_frozen = learn_post_onset_err(&frozen, onset);
        let e_hybrid = learn_post_onset_err(&hybrid, onset);
        let e_learned = learn_post_onset_err(&learned, onset);

        let (edf_frozen, _) = learn_drift_run(shape, Policy::EdfAdmit, None);
        let (edf_hybrid, _) =
            learn_drift_run(shape, Policy::EdfAdmit, Some(Arc::new(HybridPredictor::default())));

        let mean_slowdown = |r: &fg_sched::sched::SchedResult| {
            let s: Vec<f64> = r.outcomes.iter().filter_map(|o| o.slowdown()).collect();
            s.iter().sum::<f64>() / s.len().max(1) as f64
        };
        let moved = learn_migrate_run(shape, true, Arc::new(HybridPredictor::default()));
        let stayed = learn_migrate_run(shape, false, Arc::new(HybridPredictor::default()));
        let benefit = mean_slowdown(&stayed) / mean_slowdown(&moved);

        let violations = [&frozen, &hybrid, &learned, &edf_frozen, &edf_hybrid, &moved, &stayed]
            .iter()
            .map(|r| r.violations.len())
            .sum::<usize>();

        rows.push((
            shape.name().to_string(),
            vec![
                e_frozen,
                e_hybrid,
                e_learned,
                edf_precision(&edf_frozen),
                edf_precision(&edf_hybrid),
                hybrid.makespan / frozen.makespan,
                benefit,
                violations as f64,
            ],
        ));
        notes.push(format!(
            "{}: onset {:.0}s; ledger samples post-onset {} (frozen arm); \
             learned keys trained {}; makespans frozen {:.0}s / hybrid {:.0}s / learned {:.0}s; \
             migrations {}",
            shape.name(),
            onset,
            frozen
                .telemetry
                .as_ref()
                .expect("telemetry armed")
                .ledger
                .tail(frozen.telemetry.as_ref().expect("telemetry armed").ledger.total() as usize)
                .iter()
                .filter(|s| s.finish > onset)
                .count(),
            learned_model.trained_keys(),
            frozen.makespan,
            hybrid.makespan,
            learned.makespan,
            moved.trace.metrics.counter("sched_migrations").unwrap_or(0),
        ));
    }
    Figure {
        id: "ext-learn".into(),
        title: "Extension: online learned predictors — prediction error and placement quality \
                under the seeded WAN drift (repository 0 to 15% bandwidth at the median \
                arrival, scheduler bandwidth feedback frozen), analytical vs EWMA-residual \
                hybrid vs per-(app, repo) ridge regression"
            .into(),
        columns: vec![
            "analytical err".into(),
            "hybrid err".into(),
            "learned err".into(),
            "edf precision frozen".into(),
            "edf precision hybrid".into(),
            "hybrid makespan x".into(),
            "migration benefit".into(),
            "violations".into(),
        ],
        rows,
        notes,
    }
}

/// A registry entry: figure id plus its generator.
pub type FigureEntry = (&'static str, fn() -> Figure);

/// The full registry: figure id → generator, in paper order.
pub fn registry() -> Vec<FigureEntry> {
    fn fig2() -> Figure {
        model_error_figure("fig2", PaperApp::KMeans, 1400.0)
    }
    fn fig3() -> Figure {
        model_error_figure("fig3", PaperApp::Vortex, 710.0)
    }
    fn fig4() -> Figure {
        model_error_figure("fig4", PaperApp::Defect, 130.0)
    }
    fn fig5() -> Figure {
        model_error_figure("fig5", PaperApp::Em, 1400.0)
    }
    fn fig6() -> Figure {
        model_error_figure("fig6", PaperApp::Knn, 1400.0)
    }
    fn fig7() -> Figure {
        dataset_scaling_figure("fig7", PaperApp::Em, 350.0, 1400.0)
    }
    fn fig8() -> Figure {
        dataset_scaling_figure("fig8", PaperApp::Defect, 130.0, 1800.0)
    }
    fn fig9() -> Figure {
        // 500 Kbps -> 250 Kbps, as labeled in the paper.
        bandwidth_figure("fig9", PaperApp::Defect, 130.0, 62.5e3, 31.25e3)
    }
    fn fig10() -> Figure {
        bandwidth_figure("fig10", PaperApp::Em, 1400.0, 62.5e3, 31.25e3)
    }
    fn fig11() -> Figure {
        hetero_figure(
            "fig11",
            PaperApp::Em,
            Configuration::new(8, 8),
            350.0,
            700.0,
            &[PaperApp::KMeans, PaperApp::Knn, PaperApp::Vortex],
        )
    }
    fn fig12() -> Figure {
        hetero_figure(
            "fig12",
            PaperApp::Defect,
            Configuration::new(4, 4),
            130.0,
            1800.0,
            &[PaperApp::KMeans, PaperApp::Knn, PaperApp::Em],
        )
    }
    fn fig13() -> Figure {
        hetero_figure(
            "fig13",
            PaperApp::Vortex,
            Configuration::new(1, 1),
            710.0,
            1850.0,
            &[PaperApp::KMeans, PaperApp::Knn, PaperApp::Em],
        )
    }
    vec![
        ("fig2", fig2),
        ("fig3", fig3),
        ("fig4", fig4),
        ("fig5", fig5),
        ("fig6", fig6),
        ("fig7", fig7),
        ("fig8", fig8),
        ("fig9", fig9),
        ("fig10", fig10),
        ("fig11", fig11),
        ("fig12", fig12),
        ("fig13", fig13),
        ("sc-table", sc_table),
        ("ablate-robj", ablate_robj_class),
        ("ablate-tg", ablate_tg_class),
        ("ablate-disk", ablate_disk_cap),
        ("ablate-granularity", ablate_granularity),
        ("ext-cache", ext_cache_plans),
        ("ext-pipeline", ext_pipeline),
        ("ext-faults", ext_faults),
        ("ext-trace", ext_trace),
        ("ext-sched", ext_sched),
        ("ext-migrate", ext_migrate),
        ("ext-workload", ext_workload),
        ("ext-obs", ext_obs),
        ("ext-learn", ext_learn),
    ]
}
