//! Placement benchmark trajectory: measures the cached placement
//! engine's query throughput, the end-to-end scheduler simulation
//! rate, and the trace-shaped workload generator's throughput, then
//! writes `BENCH_placement.json` for the ratchet
//! (`scripts/bench_ratchet.sh`) to compare against the committed
//! baseline.
//!
//! ```text
//! cargo run -p fg-bench --release --bin bench_placement            # full
//! cargo run -p fg-bench --release --bin bench_placement -- --quick
//! cargo run -p fg-bench --release --bin bench_placement -- --out target/BENCH_placement.json
//! ```
//!
//! Full mode also simulates the heavy-preset 10⁶-job trace (the
//! acceptance target: it must finish in seconds, not minutes). Quick
//! mode, used by CI, keeps the same entry names for the small trace so
//! the ratchet can compare like against like.

use fg_bench::figures::sched_models;
use fg_sched::{
    naive_best_placement, FreeSlices, GridSpec, LoadLevel, PlacementEngine, Policy, Scheduler,
    WorkloadShape, WorkloadSpec,
};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// One measured benchmark entry.
#[derive(Serialize)]
struct Entry {
    /// Stable name the ratchet keys on.
    name: String,
    /// Entry type: `placement-throughput`, `placement-dispatch`,
    /// `sim-rate`, or `workload-gen`.
    kind: &'static str,
    /// Work items processed (placement queries, or simulated jobs).
    items: u64,
    /// Wall-clock seconds for the measured run.
    elapsed_secs: f64,
    /// Items per second — the ratcheted metric.
    per_sec: f64,
    /// For placement entries (`null` otherwise): the reference rate
    /// over the same query stream — the naive exhaustive scan for the
    /// throughput entry, static (monomorphized) dispatch for the
    /// dispatch entry — and the ratio against it.
    naive_per_sec: Option<f64>,
    speedup: Option<f64>,
    /// For sim entries (`null` otherwise): jobs admitted and makespan.
    completed: Option<u64>,
    makespan: Option<f64>,
}

#[derive(Serialize)]
struct Report {
    schema: u32,
    mode: &'static str,
    entries: Vec<Entry>,
}

/// Dataset sizes cycled through by the query stream, in bytes.
const SIZES: [u64; 4] = [200 << 20, 800 << 20, 3200 << 20, 12_800 << 20];

/// Deterministic (app, bytes, bandwidth-vector) query stream with a
/// periodic per-repo bandwidth nudge, mirroring the EWMA feedback that
/// invalidates cached rankings during a real run.
fn query_stream(grid: &GridSpec, queries: usize) -> Vec<(usize, u64, Vec<f64>)> {
    let nominal: Vec<f64> = grid.repos.iter().map(|r| r.wan.stream_bw).collect();
    let mut bw = nominal.clone();
    let mut out = Vec::with_capacity(queries);
    for q in 0..queries {
        if q % 64 == 63 {
            let r = (q / 64) % bw.len();
            bw[r] = nominal[r] * (0.6 + 0.05 * ((q / 64 % 8) as f64));
        }
        out.push((q % grid.apps.len(), SIZES[q % SIZES.len()], bw.clone()));
    }
    out
}

/// Best-of-N repetitions: wall-clock noise only ever slows a run down,
/// so the fastest repetition is the most reproducible estimate and
/// keeps the ratchet comparison stable across machines and runs.
fn best_of<F: FnMut() -> f64>(reps: usize, mut run: F) -> f64 {
    (0..reps).map(|_| run()).fold(f64::INFINITY, f64::min)
}

fn placement_throughput(grid: &GridSpec, queries: usize, naive_queries: usize) -> Entry {
    let free = FreeSlices::new(
        grid.repos.iter().map(|r| r.site.max_nodes).collect(),
        grid.sites.iter().map(|s| s.site.max_nodes).collect(),
    );

    let stream = query_stream(grid, queries);
    let mut engine = PlacementEngine::new(grid);
    let analytical = fg_predict::AnalyticalPredictor;
    // Warm the cache so the steady-state rate is what gets ratcheted.
    for (app_idx, bytes, bw) in stream.iter().take(64) {
        black_box(engine.best_placement(
            &analytical,
            grid,
            &grid.apps[*app_idx].0,
            *bytes,
            &free,
            bw,
            None,
        ));
    }
    let elapsed = best_of(3, || {
        let start = Instant::now();
        for (app_idx, bytes, bw) in &stream {
            black_box(engine.best_placement(
                &analytical,
                grid,
                &grid.apps[*app_idx].0,
                *bytes,
                &free,
                bw,
                None,
            ));
        }
        start.elapsed().as_secs_f64()
    });

    let naive_stream = query_stream(grid, naive_queries);
    let naive_elapsed = best_of(3, || {
        let naive_start = Instant::now();
        for (app_idx, bytes, bw) in &naive_stream {
            let model = &grid.apps[*app_idx].1;
            black_box(naive_best_placement(grid, model, *bytes, free.data(), free.cmp(), bw, None));
        }
        naive_start.elapsed().as_secs_f64()
    });

    let per_sec = queries as f64 / elapsed;
    let naive_per_sec = naive_queries as f64 / naive_elapsed;
    let stats = engine.stats();
    eprintln!(
        "placement-throughput: {queries} queries in {elapsed:.3}s ({per_sec:.0}/s, \
         naive {naive_per_sec:.0}/s, {} rebuilds / {} queries cached)",
        stats.rebuilds, stats.queries,
    );
    Entry {
        name: "placement-throughput".into(),
        kind: "placement-throughput",
        items: queries as u64,
        elapsed_secs: elapsed,
        per_sec,
        naive_per_sec: Some(naive_per_sec),
        speedup: Some(per_sec / naive_per_sec),
        completed: None,
        makespan: None,
    }
}

/// Virtual-dispatch cost on the quote path: the same cached query
/// stream priced through a static `&AnalyticalPredictor` (monomorphized
/// exactly as the pre-trait code was) versus through `&dyn Predictor`
/// (how `SchedCore` actually holds its pluggable predictor). `per_sec`
/// is the dyn-dispatch rate (the one the ratchet guards);
/// `naive_per_sec` reuses the static rate so `speedup` reads as
/// dyn/static — the dispatch overhead the trait refactor costs.
fn dispatch_overhead(grid: &GridSpec, queries: usize) -> Entry {
    let free = FreeSlices::new(
        grid.repos.iter().map(|r| r.site.max_nodes).collect(),
        grid.sites.iter().map(|s| s.site.max_nodes).collect(),
    );
    let stream = query_stream(grid, queries);

    let static_pred = fg_predict::AnalyticalPredictor;
    let dyn_pred: std::sync::Arc<dyn fg_predict::Predictor> =
        std::sync::Arc::new(fg_predict::AnalyticalPredictor);

    let mut engine = PlacementEngine::new(grid);
    for (app_idx, bytes, bw) in stream.iter().take(64) {
        black_box(engine.best_placement(
            &static_pred,
            grid,
            &grid.apps[*app_idx].0,
            *bytes,
            &free,
            bw,
            None,
        ));
    }
    // Both arms run more repetitions than the other entries: the
    // measured windows are tens of milliseconds, and the dyn/static
    // *ratio* is the reported number, so each side's floor must be
    // solid before the comparison means anything.
    let static_elapsed = best_of(9, || {
        let start = Instant::now();
        for (app_idx, bytes, bw) in &stream {
            black_box(engine.best_placement(
                &static_pred,
                grid,
                &grid.apps[*app_idx].0,
                *bytes,
                &free,
                bw,
                None,
            ));
        }
        start.elapsed().as_secs_f64()
    });
    let dyn_elapsed = best_of(9, || {
        let start = Instant::now();
        for (app_idx, bytes, bw) in &stream {
            black_box(engine.best_placement(
                dyn_pred.as_ref(),
                grid,
                &grid.apps[*app_idx].0,
                *bytes,
                &free,
                bw,
                None,
            ));
        }
        start.elapsed().as_secs_f64()
    });

    let per_sec = queries as f64 / dyn_elapsed;
    let static_per_sec = queries as f64 / static_elapsed;
    eprintln!(
        "placement-dispatch: dyn {per_sec:.0}/s vs static {static_per_sec:.0}/s \
         ({:.2}% overhead)",
        (static_per_sec / per_sec - 1.0) * 100.0,
    );
    Entry {
        name: "placement-dispatch".into(),
        kind: "placement-dispatch",
        items: queries as u64,
        elapsed_secs: dyn_elapsed,
        per_sec,
        naive_per_sec: Some(static_per_sec),
        speedup: Some(per_sec / static_per_sec),
        completed: None,
        makespan: None,
    }
}

fn sim_rate(name: &str, tenants: usize, jobs_per_tenant: usize, reps: usize) -> Entry {
    let grid = GridSpec::demo(sched_models());
    let names: Vec<&str> = grid.apps.iter().map(|(n, _)| n.as_str()).collect();
    let jobs = WorkloadSpec::preset_scaled(LoadLevel::Heavy, &names, 42, tenants, jobs_per_tenant)
        .generate();
    let sched = Scheduler::new(grid, Policy::FcfsBackfill);
    let mut result = None;
    let elapsed = best_of(reps, || {
        let start = Instant::now();
        result = Some(sched.run(&jobs));
        start.elapsed().as_secs_f64()
    });
    let result = result.expect("at least one repetition ran");
    let completed = result.outcomes.iter().filter(|o| o.admitted).count() as u64;
    assert!(result.violations.is_empty(), "invariant violations: {:?}", result.violations);
    let per_sec = jobs.len() as f64 / elapsed;
    eprintln!(
        "{name}: {} jobs in {elapsed:.3}s ({per_sec:.0} jobs/s, {completed} admitted, \
         makespan {:.0}s)",
        jobs.len(),
        result.makespan,
    );
    Entry {
        name: name.into(),
        kind: "sim-rate",
        items: jobs.len() as u64,
        elapsed_secs: elapsed,
        per_sec,
        naive_per_sec: None,
        speedup: None,
        completed: Some(completed),
        makespan: Some(result.makespan),
    }
}

/// Throughput of the trace-shaped workload generator itself: burst
/// sessions and thinned modulation are the most draw-hungry path, so
/// the bursty shape is the one the ratchet watches. The stream is
/// regenerated from scratch each repetition — sampling, sorting, and
/// id assignment included.
fn workload_gen_rate(name: &str, tenants: usize, jobs_per_tenant: usize, reps: usize) -> Entry {
    let grid = GridSpec::demo(sched_models());
    let names: Vec<&str> = grid.apps.iter().map(|(n, _)| n.as_str()).collect();
    let spec = WorkloadSpec::shaped_scaled(
        WorkloadShape::Bursty,
        LoadLevel::Heavy,
        &names,
        42,
        tenants,
        jobs_per_tenant,
    );
    let mut jobs = Vec::new();
    let elapsed = best_of(reps, || {
        let start = Instant::now();
        jobs = black_box(spec.generate());
        start.elapsed().as_secs_f64()
    });
    let per_sec = jobs.len() as f64 / elapsed;
    eprintln!("{name}: {} jobs generated in {elapsed:.3}s ({per_sec:.0} jobs/s)", jobs.len());
    Entry {
        name: name.into(),
        kind: "workload-gen",
        items: jobs.len() as u64,
        elapsed_secs: elapsed,
        per_sec,
        naive_per_sec: None,
        speedup: None,
        completed: None,
        makespan: None,
    }
}

fn main() {
    let mut quick = false;
    let mut out = String::from("BENCH_placement.json");
    let mut probe: Option<(usize, usize)> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out requires a path"),
            "--sim" => {
                let t = args.next().and_then(|s| s.parse().ok()).expect("--sim TENANTS JOBS");
                let j = args.next().and_then(|s| s.parse().ok()).expect("--sim TENANTS JOBS");
                probe = Some((t, j));
            }
            other => {
                eprintln!(
                    "usage: bench_placement [--quick] [--out PATH] [--sim TENANTS JOBS] \
                     (got {other:?})"
                );
                std::process::exit(2);
            }
        }
    }

    // A one-off sim probe: time a single custom-sized trace and exit
    // without touching the report file.
    if let Some((tenants, jobs)) = probe {
        sim_rate(&format!("sim-rate-{tenants}x{jobs}"), tenants, jobs, 1);
        return;
    }

    // Quick and full mode share the placement and 10k-sim workloads so
    // the ratchet compares like against like; full mode only adds the
    // million-job acceptance trace (the expensive part).
    let grid = GridSpec::demo(sched_models());
    let mut entries = vec![
        placement_throughput(&grid, 200_000, 4_000),
        dispatch_overhead(&grid, 200_000),
        sim_rate("sim-rate-10k", 40, 250, 3),
        workload_gen_rate("workload-gen-10k", 40, 250, 3),
    ];
    if !quick {
        // The acceptance target: a heavy-preset million-job trace,
        // simulated end to end in seconds.
        entries.push(sim_rate("sim-rate-1m", 100, 10_000, 1));
        entries.push(workload_gen_rate("workload-gen-1m", 100, 10_000, 1));
    }

    let report = Report { schema: 1, mode: if quick { "quick" } else { "full" }, entries };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, json + "\n").expect("write report");
    eprintln!("wrote {out}");
}
