//! Verify the reproduction's shape claims against regenerated figures.
//!
//! Reads `target/figures/*.json` (produced by the `figures` binary) and
//! asserts the qualitative claims recorded in EXPERIMENTS.md: model
//! ordering, worst-case locations, error ceilings, ablation contrasts.
//! Exits non-zero with a list of violations, so the claims can be
//! re-checked after any recalibration:
//!
//! ```text
//! cargo run -p fg-bench --release --bin figures
//! cargo run -p fg-bench --release --bin check_figures
//! cargo run -p fg-bench --release --bin check_figures -- ext-faults ext-trace
//! ```
//!
//! With figure-id arguments, only the claims of those figures are
//! checked — the CI path for regenerating a subset.

use fg_bench::Figure;
use std::process::ExitCode;

struct Checker {
    failures: Vec<String>,
    filter: Vec<String>,
}

impl Checker {
    fn claim(&mut self, figure: &str, what: &str, ok: bool) {
        if ok {
            println!("ok   {figure}: {what}");
        } else {
            println!("FAIL {figure}: {what}");
            self.failures.push(format!("{figure}: {what}"));
        }
    }

    fn load(&mut self, id: &str) -> Option<Figure> {
        if !self.filter.is_empty() && !self.filter.iter().any(|f| f == id) {
            return None;
        }
        let path = format!("target/figures/{id}.json");
        match std::fs::read_to_string(&path) {
            Ok(json) => match serde_json::from_str(&json) {
                Ok(fig) => Some(fig),
                Err(e) => {
                    self.claim(id, &format!("parse {path}: {e}"), false);
                    None
                }
            },
            Err(_) => {
                self.claim(id, &format!("{path} missing — run the figures binary first"), false);
                None
            }
        }
    }
}

/// Mean of a figure column.
fn mean(fig: &Figure, column: &str) -> f64 {
    let v = fig.column_values(column);
    v.iter().sum::<f64>() / v.len() as f64
}

/// Value at a row label.
fn at(fig: &Figure, row: &str, column: &str) -> f64 {
    let idx = fig.columns.iter().position(|c| c == column).expect("column");
    fig.rows
        .iter()
        .find(|(l, _)| l == row)
        .map(|(_, vs)| vs[idx])
        .unwrap_or_else(|| panic!("no row {row:?} in {}", fig.id))
}

fn main() -> ExitCode {
    let filter: Vec<String> = std::env::args().skip(1).collect();
    let mut ck = Checker { failures: Vec::new(), filter };

    // Figures 2-6: model ordering and worst-case locations.
    for id in ["fig2", "fig3", "fig4", "fig5", "fig6"] {
        let Some(fig) = ck.load(id) else { continue };
        let nc = mean(&fig, "no communication");
        let rc = mean(&fig, "reduction communication");
        let gr = mean(&fig, "global reduction");
        ck.claim(
            id,
            "mean error: global <= reduction-comm <= no-comm",
            gr <= rc * 1.05 && rc <= nc * 1.05,
        );
        let worst_nc = fig
            .rows
            .iter()
            .max_by(|a, b| a.1[0].total_cmp(&b.1[0]))
            .map(|(l, _)| l.clone())
            .unwrap_or_default();
        ck.claim(id, "no-comm worst case is 8-16", worst_nc == "8-16");
        ck.claim(id, "global-reduction mean under 2%", gr < 0.02);
        ck.claim(id, "no-comm under 20% everywhere", fig.max_value() < 0.20);
    }

    // Figures 7-8: dataset scaling stays tight; fig8's n=8 row spikes.
    if let Some(fig) = ck.load("fig7") {
        ck.claim("fig7", "all errors under 2%", fig.max_value() < 0.02);
    }
    if let Some(fig) = ck.load("fig8") {
        let small_rows = fig
            .rows
            .iter()
            .filter(|(l, _)| !l.starts_with('8'))
            .flat_map(|(_, v)| v.iter())
            .filter(|v| v.is_finite())
            .fold(0.0f64, |a, &b| a.max(b));
        let n8 = at(&fig, "8 data nodes", "16 cn");
        ck.claim("fig8", "n<=4 rows under 1%", small_rows < 0.01);
        ck.claim("fig8", "n=8 shows the sub-linear-retrieval bump", n8 > small_rows * 2.0);
    }

    // Figures 9-10: bandwidth scaling is near-exact.
    for id in ["fig9", "fig10"] {
        if let Some(fig) = ck.load(id) {
            ck.claim(id, "all errors under 2%", fig.max_value() < 0.02);
        }
    }

    // Figures 11-13: heterogeneous predictions are the least accurate
    // but bounded, and the mechanism note is present.
    for id in ["fig11", "fig12", "fig13"] {
        if let Some(fig) = ck.load(id) {
            ck.claim(id, "errors bounded by 12%", fig.max_value() < 0.12);
            ck.claim(
                id,
                "mechanism note records the measured factors",
                fig.notes.iter().any(|n| n.contains("s_c=")),
            );
        }
    }

    // sc-table: per-app compute factors spread like §5.4's observation.
    if let Some(fig) = ck.load("sc-table") {
        let sc = fig.column_values("s_c");
        let (lo, hi) = (
            sc.iter().copied().fold(f64::INFINITY, f64::min),
            sc.iter().copied().fold(0.0f64, f64::max),
        );
        ck.claim(
            "sc-table",
            "kNN is the most cmp-bound (smallest s_c)",
            at(&fig, "knn", "s_c") <= lo + 1e-12,
        );
        ck.claim(
            "sc-table",
            "vortex is the most flop/mem-bound (largest s_c)",
            at(&fig, "vortex", "s_c") >= hi - 1e-12,
        );
        ck.claim("sc-table", "factors vary considerably (spread > 0.1)", hi - lo > 0.10);
    }

    // Ablations: the contrasts that justify the design choices.
    if let Some(fig) = ck.load("ablate-robj") {
        let correct = at(&fig, "8-16", "linear (correct)");
        let wrong = at(&fig, "8-16", "constant (wrong)");
        ck.claim(
            "ablate-robj",
            "wrong object class inflates T_ro error >10x",
            wrong > correct.max(0.005) * 10.0,
        );
    }
    if let Some(fig) = ck.load("ablate-tg") {
        let correct = at(&fig, "8-16", "constant-linear (correct)");
        let wrong = at(&fig, "8-16", "linear-constant (wrong)");
        ck.claim("ablate-tg", "wrong T_g class inflates error >3x", wrong > correct * 3.0);
    }
    if let Some(fig) = ck.load("ablate-disk") {
        let capped = at(&fig, "8-16", "capped backplane");
        let uncapped = at(&fig, "8-16", "uncapped");
        ck.claim("ablate-disk", "backplane cap explains the n=8 error", capped > uncapped * 3.0);
    }
    if let Some(fig) = ck.load("ablate-granularity") {
        let good = at(&fig, "64 chunks", "8-16").max(at(&fig, "80 chunks", "8-16"));
        let bad = at(&fig, "67 chunks", "8-16");
        ck.claim(
            "ablate-granularity",
            "awkward chunk counts inflate the 8-16 error >5x",
            bad > good * 5.0,
        );
    }
    if let Some(fig) = ck.load("ext-cache") {
        ck.claim("ext-cache", "all cache-plan predictions under 5%", fig.max_value() < 0.05);
    }
    if let Some(fig) = ck.load("ext-pipeline") {
        let ratios = fig.column_values("pipelined / phased");
        ck.claim("ext-pipeline", "overlap always saves", ratios.iter().all(|&r| r < 1.0));
    }

    if let Some(fig) = ck.load("ext-faults") {
        ck.claim(
            "ext-faults",
            "fault-free model error under 1%",
            at(&fig, "fault-free", "model error") < 0.01,
        );
        // The fault-free prediction misses the measured time by almost
        // exactly the recovery share: the residual on the non-recovery
        // components stays small.
        let errs = fig.column_values("model error");
        let shares = fig.column_values("recovery share");
        ck.claim(
            "ext-faults",
            "model error under faults tracks the recovery share (within 10 points)",
            errs.iter().zip(&shares).skip(1).all(|(e, s)| (e - s).abs() < 0.10),
        );
        ck.claim(
            "ext-faults",
            "every fault schedule costs time",
            fig.column_values("overhead vs fault-free").iter().skip(1).all(|&o| o > 0.0),
        );
    }

    if let Some(fig) = ck.load("ext-trace") {
        ck.claim(
            "ext-trace",
            "trace reconstructs every report component exactly (0 ns mismatch)",
            fig.column_values("component mismatch (ns)").iter().all(|&m| m == 0.0),
        );
        ck.claim(
            "ext-trace",
            "trace-derived profiles equal report-derived profiles",
            fig.column_values("profile drift").iter().all(|&d| d == 0.0),
        );
        ck.claim(
            "ext-trace",
            "kmeans tracing overhead under 5% wall-clock",
            at(&fig, "kmeans", "trace overhead") < 0.05,
        );
    }

    if let Some(fig) = ck.load("ext-sched") {
        ck.claim(
            "ext-sched",
            "no fairness or work-conservation violations in any run",
            fig.column_values("violations").iter().all(|&v| v == 0.0),
        );
        ck.claim(
            "ext-sched",
            "only admission control rejects jobs",
            fig.rows.iter().all(|(label, _)| {
                label.starts_with("edf-admit") || at(&fig, label, "rejected jobs") == 0.0
            }),
        );
        let slow = |row: &str| at(&fig, row, "mean slowdown");
        ck.claim(
            "ext-sched",
            "light load is near-uncontended (slowdown under 1.5 everywhere)",
            fig.rows.iter().filter(|(l, _)| l.ends_with("light")).all(|(l, _)| slow(l) < 1.5),
        );
        ck.claim(
            "ext-sched",
            "load stretches FCFS: heavy slowdown at least 2x light",
            slow("fcfs heavy") > 2.0 * slow("fcfs light"),
        );
        ck.claim(
            "ext-sched",
            "heavy-load slowdown ordering: fcfs >= backfill >= spjf",
            slow("fcfs heavy") >= slow("fcfs-backfill heavy") * 0.95
                && slow("fcfs-backfill heavy") >= slow("spjf heavy") * 0.95,
        );
        ck.claim(
            "ext-sched",
            "admission control keeps heavy-load precision at 90%+",
            at(&fig, "edf-admit heavy", "admission precision") >= 0.90,
        );
        ck.claim(
            "ext-sched",
            "admission control beats FCFS deadline compliance at heavy load",
            at(&fig, "edf-admit heavy", "admission precision")
                > at(&fig, "fcfs heavy", "admission precision"),
        );
        ck.claim(
            "ext-sched",
            "admission rejects some heavy-load jobs (control is active)",
            at(&fig, "edf-admit heavy", "rejected jobs") >= 1.0,
        );
        // The tolerance band for the predictor-driven completion
        // estimates: under admission control the submission-time
        // estimate stays within 35% of the achieved turnaround even at
        // the heavy preset, and well under the uncontrolled FCFS error.
        ck.claim(
            "ext-sched",
            "edf-admit heavy completion-estimate error within the 35% band",
            at(&fig, "edf-admit heavy", "completion estimate error") < 0.35,
        );
        ck.claim(
            "ext-sched",
            "admission estimates beat FCFS estimates at heavy load",
            at(&fig, "edf-admit heavy", "completion estimate error")
                < at(&fig, "fcfs heavy", "completion estimate error"),
        );
    }

    if let Some(fig) = ck.load("ext-migrate") {
        ck.claim(
            "ext-migrate",
            "migration beats stay-put under sustained degradation at every load",
            fig.rows
                .iter()
                .all(|(l, _)| at(&fig, l, "migrate slowdown") < at(&fig, l, "stay slowdown")),
        );
        ck.claim(
            "ext-migrate",
            "degradation actually triggers migrations at every load",
            fig.column_values("migrations").iter().all(|&m| m >= 1.0),
        );
        ck.claim(
            "ext-migrate",
            "migration never triggers under stable bandwidth (hysteresis)",
            fig.column_values("stable migrations").iter().all(|&m| m == 0.0),
        );
        ck.claim(
            "ext-migrate",
            "token-bucket quota violations are exactly zero",
            fig.column_values("quota violations").iter().all(|&v| v == 0.0),
        );
    }

    if let Some(fig) = ck.load("ext-workload") {
        ck.claim(
            "ext-workload",
            "no invariant or quota violations under any traffic shape",
            fig.column_values("violations").iter().all(|&v| v == 0.0),
        );
        let p99 = |row: &str| at(&fig, row, "fcfs p99 slowdown");
        ck.claim(
            "ext-workload",
            "heavy tails explode FCFS tail latency: P99 slowdown at least 3x uniform",
            p99("heavy-tail") >= 3.0 * p99("uniform"),
        );
        ck.claim(
            "ext-workload",
            "burst sessions explode FCFS tail latency: P99 slowdown at least 3x uniform",
            p99("bursty") >= 3.0 * p99("uniform"),
        );
        ck.claim(
            "ext-workload",
            "EDF admission precision stays at 85%+ under every traffic shape",
            fig.column_values("edf precision").iter().all(|&p| p >= 0.85),
        );
        ck.claim(
            "ext-workload",
            "migration still pays off under every traffic shape (benefit > 1)",
            fig.column_values("migration benefit").iter().all(|&b| b > 1.0),
        );
        ck.claim(
            "ext-workload",
            "bursts amplify migration benefit over steady heavy-tail traffic",
            at(&fig, "bursty", "migration benefit") > at(&fig, "heavy-tail", "migration benefit"),
        );
        ck.claim(
            "ext-workload",
            "quota-armed admissions stay fair across tenants (Jain >= 0.95)",
            fig.column_values("quota fairness").iter().all(|&j| j >= 0.95),
        );
        ck.claim(
            "ext-workload",
            "admission estimates degrade under trace-shaped traffic but stay in a 50% band",
            fig.column_values("edf estimate error").iter().all(|&e| e < 0.50)
                && at(&fig, "uniform", "edf estimate error")
                    <= at(&fig, "heavy-tail", "edf estimate error"),
        );
    }

    if let Some(fig) = ck.load("ext-obs") {
        ck.claim(
            "ext-obs",
            "fault-free runs never raise a drift alarm (zero false positives)",
            fig.column_values("clean alarms").iter().all(|&a| a == 0.0),
        );
        ck.claim(
            "ext-obs",
            "the seeded WAN degradation trips the detector under every traffic shape",
            fig.column_values("alarms").iter().all(|&a| a >= 1.0),
        );
        ck.claim(
            "ext-obs",
            "every alarm blames the network component (only the WAN lied)",
            fig.column_values("off-net alarms").iter().all(|&a| a == 0.0),
        );
        ck.claim(
            "ext-obs",
            "detection latency within 10 degraded-repository jobs of fault onset",
            fig.column_values("jobs to alarm").iter().all(|&j| j.is_finite() && j <= 10.0),
        );
        ck.claim(
            "ext-obs",
            "a metrics subscription costs the quote path under 5%",
            fig.column_values("subscriber overhead").iter().all(|&o| o < 0.05),
        );
    }

    if let Some(fig) = ck.load("ext-learn") {
        ck.claim(
            "ext-learn",
            "the trained hybrid closes at least 20% of the frozen model's error, every shape",
            fig.rows
                .iter()
                .all(|(l, _)| at(&fig, l, "hybrid err") < 0.8 * at(&fig, l, "analytical err")),
        );
        ck.claim(
            "ext-learn",
            "the learned ridge model beats the frozen model on regime-coherent shapes",
            ["uniform", "bursty"]
                .iter()
                .all(|l| at(&fig, l, "learned err") < 0.8 * at(&fig, l, "analytical err")),
        );
        ck.claim(
            "ext-learn",
            "the trust region bounds the learned model's damage to 2x frozen, even where \
             its sample window mixes regimes (heavy-tail)",
            fig.rows
                .iter()
                .all(|(l, _)| at(&fig, l, "learned err") <= 2.0 * at(&fig, l, "analytical err")),
        );
        ck.claim(
            "ext-learn",
            "EDF admission precision under the hybrid stays within 0.1 of the frozen model \
             and improves on uniform and bursty traffic",
            fig.rows.iter().all(|(l, _)| {
                at(&fig, l, "edf precision hybrid") >= at(&fig, l, "edf precision frozen") - 0.1
            }) && ["uniform", "bursty"]
                .iter()
                .all(|l| at(&fig, l, "edf precision hybrid") > at(&fig, l, "edf precision frozen")),
        );
        ck.claim(
            "ext-learn",
            "the hybrid's drift-avoiding placements keep makespan within 2x either way",
            fig.column_values("hybrid makespan x").iter().all(|&m| m > 0.5 && m < 2.0),
        );
        ck.claim(
            "ext-learn",
            "migration still pays off with the hybrid predictor installed (benefit > 1)",
            fig.column_values("migration benefit").iter().all(|&b| b > 1.0),
        );
        ck.claim(
            "ext-learn",
            "no invariant violations in any predictor arm",
            fig.column_values("violations").iter().all(|&v| v == 0.0),
        );
    }

    if ck.failures.is_empty() {
        println!("\nall figure claims hold");
        ExitCode::SUCCESS
    } else {
        println!("\n{} claim(s) violated:", ck.failures.len());
        for f in &ck.failures {
            println!("  - {f}");
        }
        ExitCode::FAILURE
    }
}
