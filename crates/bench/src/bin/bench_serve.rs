//! Service benchmark trajectory: measures fg-serve's request
//! throughput over the full wire path — client framing, session
//! thread, snapshot-backed query pool or core thread, response
//! framing — and writes `BENCH_serve.json` for the ratchet
//! (`scripts/bench_ratchet.sh`) to compare against the committed
//! baseline.
//!
//! ```text
//! cargo run -p fg-bench --release --bin bench_serve            # full
//! cargo run -p fg-bench --release --bin bench_serve -- --quick
//! cargo run -p fg-bench --release --bin bench_serve -- --out target/BENCH_serve.json
//! ```
//!
//! Three entries:
//!
//! * `serve-quote-rps` — prediction quotes from one client, answered
//!   lock-free from the published snapshot.
//! * `serve-quote-rps-sub` — the same quote stream with a metrics
//!   subscription armed on the session: the telemetry-overhead entry.
//!   Steady state adds one atomic epoch load per response, so this
//!   must ratchet with the plain entry.
//! * `serve-quote-rps-4c` — the same quote stream split over four
//!   concurrent clients, exercising the thread-per-core pool.
//! * `serve-replay-rps` — a trace-shaped workload submitted and
//!   drained end to end; the rate is wire requests (submissions plus
//!   the drain) per second.

use fg_bench::figures::sched_models;
use fg_sched::{GridSpec, LoadLevel, Policy, Scheduler, WorkloadShape, WorkloadSpec};
use fg_serve::{replay, ServeClient, Server};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// One measured benchmark entry.
#[derive(Serialize)]
struct Entry {
    /// Stable name the ratchet keys on.
    name: String,
    /// Entry type: `quote-rps` or `replay-rps`.
    kind: &'static str,
    /// Wire requests completed in the measured run.
    items: u64,
    /// Wall-clock seconds for the measured run.
    elapsed_secs: f64,
    /// Requests per second — the ratcheted metric.
    per_sec: f64,
    /// For replay entries (`null` otherwise): jobs in the trace and
    /// the schedule's makespan, as a sanity anchor.
    jobs: Option<u64>,
    makespan: Option<f64>,
}

#[derive(Serialize)]
struct Report {
    schema: u32,
    mode: &'static str,
    entries: Vec<Entry>,
}

fn scheduler() -> Scheduler {
    Scheduler::new(GridSpec::demo(sched_models()), Policy::EdfAdmit)
}

/// Best-of-N repetitions: wall-clock noise only ever slows a run
/// down, so the fastest repetition is the most reproducible estimate.
fn best_of<F: FnMut() -> f64>(reps: usize, mut run: F) -> f64 {
    (0..reps).map(|_| run()).fold(f64::INFINITY, f64::min)
}

fn quote_rps(queries: usize, reps: usize, subscribed: bool) -> Entry {
    let server = Server::start(scheduler());
    let mut client = ServeClient::connect(&server);
    if subscribed {
        // Prime the metrics hub with one real submission, then arm the
        // session's subscription: every quote response now pays the
        // telemetry plane's steady-state cost (one atomic epoch load).
        let jobs = WorkloadSpec::shaped(WorkloadShape::Uniform, LoadLevel::Light, &["kmeans"], 7)
            .generate();
        client.submit(jobs[0].clone()).expect("submit");
        client.subscribe_metrics(0).expect("subscribe");
    }
    let apps: Vec<String> =
        GridSpec::demo(sched_models()).apps.iter().map(|(n, _)| n.clone()).collect();
    let elapsed = best_of(reps, || {
        let start = Instant::now();
        for q in 0..queries {
            let app = &apps[q % apps.len()];
            let bytes = 1u64 << (20 + q % 12);
            black_box(client.quote(app, bytes, 2.0).expect("quote"));
        }
        start.elapsed().as_secs_f64()
    });
    drop(client);
    server.shutdown();
    let name = if subscribed { "serve-quote-rps-sub" } else { "serve-quote-rps" };
    let per_sec = queries as f64 / elapsed;
    eprintln!("{name}: {queries} quotes in {elapsed:.3}s ({per_sec:.0}/s)");
    Entry {
        name: name.into(),
        kind: "quote-rps",
        items: queries as u64,
        elapsed_secs: elapsed,
        per_sec,
        jobs: None,
        makespan: None,
    }
}

fn quote_rps_concurrent(queries_per_client: usize, clients: usize, reps: usize) -> Entry {
    let server = Server::start(scheduler());
    let apps: Vec<String> =
        GridSpec::demo(sched_models()).apps.iter().map(|(n, _)| n.clone()).collect();
    let elapsed = best_of(reps, || {
        let start = Instant::now();
        std::thread::scope(|scope| {
            for c in 0..clients {
                let mut client = ServeClient::connect(&server);
                let apps = &apps;
                scope.spawn(move || {
                    for q in 0..queries_per_client {
                        let app = &apps[(q + c) % apps.len()];
                        let bytes = 1u64 << (20 + (q + c) % 12);
                        black_box(client.quote(app, bytes, 2.0).expect("quote"));
                    }
                });
            }
        });
        start.elapsed().as_secs_f64()
    });
    server.shutdown();
    let total = (queries_per_client * clients) as u64;
    let per_sec = total as f64 / elapsed;
    eprintln!(
        "serve-quote-rps-{clients}c: {total} quotes over {clients} clients in {elapsed:.3}s \
         ({per_sec:.0}/s)"
    );
    Entry {
        name: format!("serve-quote-rps-{clients}c"),
        kind: "quote-rps",
        items: total,
        elapsed_secs: elapsed,
        per_sec,
        jobs: None,
        makespan: None,
    }
}

fn replay_rps(tenants: usize, jobs_per_tenant: usize, reps: usize) -> Entry {
    let grid = GridSpec::demo(sched_models());
    let names: Vec<&str> = grid.apps.iter().map(|(n, _)| n.as_str()).collect();
    let jobs = WorkloadSpec::shaped_scaled(
        WorkloadShape::HeavyTail,
        LoadLevel::Heavy,
        &names,
        42,
        tenants,
        jobs_per_tenant,
    )
    .generate();
    let mut makespan = 0.0;
    let elapsed = best_of(reps, || {
        let server = Server::start(scheduler());
        let start = Instant::now();
        let run = replay(&server, &jobs, None).expect("replay");
        let t = start.elapsed().as_secs_f64();
        makespan = run.drained.makespan;
        server.shutdown();
        t
    });
    let requests = jobs.len() as u64 + 1; // submissions plus the drain
    let per_sec = requests as f64 / elapsed;
    eprintln!(
        "serve-replay-rps: {} jobs served in {elapsed:.3}s ({per_sec:.0} req/s, \
         makespan {makespan:.0}s)",
        jobs.len()
    );
    Entry {
        name: "serve-replay-rps".into(),
        kind: "replay-rps",
        items: requests,
        elapsed_secs: elapsed,
        per_sec,
        jobs: Some(jobs.len() as u64),
        makespan: Some(makespan),
    }
}

fn main() {
    let mut quick = false;
    let mut out = String::from("BENCH_serve.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out requires a path"),
            other => {
                eprintln!("usage: bench_serve [--quick] [--out PATH] (got {other:?})");
                std::process::exit(2);
            }
        }
    }

    // Quick and full mode share every entry name so the ratchet
    // compares like against like; full mode just runs more work per
    // entry.
    let (quotes, reps) = if quick { (5_000, 2) } else { (20_000, 3) };
    let entries = vec![
        quote_rps(quotes, reps, false),
        quote_rps(quotes, reps, true),
        quote_rps_concurrent(quotes / 4, 4, reps),
        replay_rps(20, 150, reps),
    ];

    let report = Report { schema: 1, mode: if quick { "quick" } else { "full" }, entries };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, json + "\n").expect("write report");
    eprintln!("wrote {out}");
}
