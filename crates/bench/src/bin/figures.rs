//! Regenerate the paper's evaluation figures.
//!
//! ```text
//! cargo run -p fg-bench --release --bin figures            # everything
//! cargo run -p fg-bench --release --bin figures -- fig2 fig5
//! cargo run -p fg-bench --release --bin figures -- --list
//! cargo run -p fg-bench --release --bin figures -- --bars fig2   # bar charts
//! ```
//!
//! Each figure prints as a text table of relative prediction errors and
//! is also written to `target/figures/<id>.json`.

use fg_bench::figures::registry;
use std::io::Write as _;
use std::time::Instant;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bars = if let Some(pos) = args.iter().position(|a| a == "--bars") {
        args.remove(pos);
        true
    } else {
        false
    };
    let registry = registry();
    if args.iter().any(|a| a == "--list") {
        for (id, _) in &registry {
            println!("{id}");
        }
        return;
    }
    let selected: Vec<&(&str, fn() -> fg_bench::Figure)> = if args.is_empty() {
        registry.iter().collect()
    } else {
        args.iter()
            .map(|a| {
                registry
                    .iter()
                    .find(|(id, _)| id == a)
                    .unwrap_or_else(|| panic!("unknown figure {a:?}; try --list"))
            })
            .collect()
    };

    let out_dir = std::path::Path::new("target/figures");
    std::fs::create_dir_all(out_dir).expect("create target/figures");
    let mut stdout = std::io::stdout().lock();
    for (id, gen) in selected {
        let started = Instant::now();
        let figure = gen();
        let elapsed = started.elapsed();
        let rendered = if bars { figure.render_bars() } else { figure.render() };
        write!(stdout, "{rendered}").expect("stdout");
        writeln!(stdout, "  [regenerated in {:.1}s]\n", elapsed.as_secs_f64()).expect("stdout");
        let path = out_dir.join(format!("{id}.json"));
        let json = serde_json::to_string_pretty(&figure).expect("serialize figure");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
    }
}
