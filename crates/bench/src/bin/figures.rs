//! Regenerate the paper's evaluation figures.
//!
//! ```text
//! cargo run -p fg-bench --release --bin figures            # everything
//! cargo run -p fg-bench --release --bin figures -- fig2 fig5
//! cargo run -p fg-bench --release --bin figures -- --list
//! cargo run -p fg-bench --release --bin figures -- --bars fig2   # bar charts
//! ```
//!
//! Each figure prints as a text table of relative prediction errors and
//! is also written to `target/figures/<id>.json`. Regenerating the
//! `ext-trace` figure additionally exports each paper application's
//! golden-configuration trace to `target/figures/traces/<app>.jsonl`
//! (the canonical record format) and `<app>.chrome.json` (loadable in
//! `chrome://tracing` / Perfetto).

use fg_bench::figures::registry;
use fg_bench::scenario::golden_trace_run;
use fg_bench::PaperApp;
use std::io::Write as _;
use std::time::Instant;

fn export_traces(out_dir: &std::path::Path) {
    let trace_dir = out_dir.join("traces");
    std::fs::create_dir_all(&trace_dir).expect("create target/figures/traces");
    for app in PaperApp::PAPER_FIVE {
        let (_, trace) = golden_trace_run(app);
        let jsonl = trace_dir.join(format!("{}.jsonl", app.name()));
        std::fs::write(&jsonl, fg_trace::to_jsonl(&trace))
            .unwrap_or_else(|e| panic!("write {jsonl:?}: {e}"));
        let chrome = trace_dir.join(format!("{}.chrome.json", app.name()));
        std::fs::write(&chrome, fg_trace::to_chrome_json(&trace))
            .unwrap_or_else(|e| panic!("write {chrome:?}: {e}"));
        println!("  trace: {} and {}", jsonl.display(), chrome.display());
    }
}

fn export_sched_traces(out_dir: &std::path::Path) {
    let dir = out_dir.join("sched");
    std::fs::create_dir_all(&dir).expect("create target/figures/sched");
    for policy in fg_sched::Policy::ALL {
        let result = fg_bench::figures::sched_run(policy, fg_sched::LoadLevel::Heavy);
        let jsonl = dir.join(format!("{}.jsonl", policy.name()));
        std::fs::write(&jsonl, fg_trace::to_jsonl(&result.trace))
            .unwrap_or_else(|e| panic!("write {jsonl:?}: {e}"));
        let chrome = dir.join(format!("{}.chrome.json", policy.name()));
        std::fs::write(&chrome, fg_trace::to_chrome_json(&result.trace))
            .unwrap_or_else(|e| panic!("write {chrome:?}: {e}"));
        println!("  sched trace: {} and {}", jsonl.display(), chrome.display());
    }
}

fn export_incidents(out_dir: &std::path::Path) {
    let dir = out_dir.join("incidents");
    std::fs::create_dir_all(&dir).expect("create target/figures/incidents");
    for shape in fg_sched::WorkloadShape::ALL {
        let bundles = fg_bench::figures::obs_incident_bundles(shape);
        for (i, bundle) in bundles.iter().enumerate() {
            let path = dir.join(format!("{}-{i}.jsonl", shape.name()));
            std::fs::write(&path, bundle).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
            println!("  incident bundle: {}", path.display());
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bars = if let Some(pos) = args.iter().position(|a| a == "--bars") {
        args.remove(pos);
        true
    } else {
        false
    };
    let registry = registry();
    if args.iter().any(|a| a == "--list") {
        for (id, _) in &registry {
            println!("{id}");
        }
        return;
    }
    let selected: Vec<&fg_bench::FigureEntry> = if args.is_empty() {
        registry.iter().collect()
    } else {
        args.iter()
            .map(|a| {
                registry
                    .iter()
                    .find(|(id, _)| id == a)
                    .unwrap_or_else(|| panic!("unknown figure {a:?}; try --list"))
            })
            .collect()
    };

    let out_dir = std::path::Path::new("target/figures");
    std::fs::create_dir_all(out_dir).expect("create target/figures");
    let mut stdout = std::io::stdout().lock();
    for (id, gen) in selected {
        let started = Instant::now();
        let figure = gen();
        let elapsed = started.elapsed();
        let rendered = if bars { figure.render_bars() } else { figure.render() };
        write!(stdout, "{rendered}").expect("stdout");
        writeln!(stdout, "  [regenerated in {:.1}s]\n", elapsed.as_secs_f64()).expect("stdout");
        let path = out_dir.join(format!("{id}.json"));
        let json = serde_json::to_string_pretty(&figure).expect("serialize figure");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        if *id == "ext-trace" {
            export_traces(out_dir);
        }
        if *id == "ext-sched" {
            export_sched_traces(out_dir);
        }
        if *id == "ext-obs" {
            export_incidents(out_dir);
        }
    }
}
