//! Shared experiment plumbing: canonical deployments, profile capture,
//! and the profile-predict-measure loop every figure repeats.

use crate::apps::PaperApp;
use fg_chunks::Dataset;
use fg_cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};
use fg_predict::{
    relative_error, ComputeModel, ExecTimePredictor, InterconnectParams, Prediction, Profile,
    Target,
};

/// Dataset scale used by the figure harness: experiments carry the
/// paper's nominal sizes (130 MB – 1.85 GB) while generating 1/250th of
/// the bytes; the simulation charges disk, network, and metered compute
/// at nominal volume, so virtual times correspond to the paper's setting.
pub const FIGURE_SCALE: f64 = 0.004;

/// Default per-data-node WAN bandwidth for figures 2–8 and 11–13
/// (bytes/sec): a well-provisioned 2007 site-to-site path.
pub const DEFAULT_WAN_BW: f64 = 40e6;

/// A deployment on the profile cluster (700 MHz Pentiums, Myrinet).
pub fn pentium_deployment(n: usize, c: usize, wan_bw: f64) -> Deployment {
    Deployment::new(
        RepositorySite::pentium_repository("osu-repository", 8),
        ComputeSite::pentium_myrinet("osu-pentium", 16),
        Wan::per_stream(wan_bw),
        Configuration::new(n, c),
    )
}

/// A deployment on the target cluster of §5.4 (2.4 GHz Opterons,
/// Infiniband).
pub fn opteron_deployment(n: usize, c: usize, wan_bw: f64) -> Deployment {
    Deployment::new(
        RepositorySite::opteron_repository("osu-repository-b", 8),
        ComputeSite::opteron_infiniband("osu-opteron", 16),
        Wan::per_stream(wan_bw),
        Configuration::new(n, c),
    )
}

/// Run a profile and return its summary.
pub fn collect_profile(app: PaperApp, deployment: Deployment, dataset: &Dataset) -> Profile {
    Profile::from_report(&app.execute(deployment, dataset))
}

/// The fixed small run pinned by the golden-trace suite: 8 MB nominal
/// at 1% scale, seed 3, on a 2-4 Pentium deployment with a 1 MB/s WAN.
/// Everything is deterministic, so the emitted trace is a stable
/// regression artifact.
pub fn golden_trace_run(app: PaperApp) -> (fg_middleware::ExecutionReport, fg_trace::Trace) {
    let dataset = app.generate(&format!("golden-{}", app.name()), 8.0, 0.01, 3);
    app.execute_traced(pentium_deployment(2, 4, 1e6), &dataset)
}

/// One profile-based prediction experiment against one actual run.
pub struct Comparison {
    /// The target configuration evaluated.
    pub config: Configuration,
    /// Measured execution time (seconds).
    pub actual: f64,
    /// Predicted execution time per compute model, in
    /// [`ComputeModel::ALL`] order.
    pub predicted: [f64; 3],
}

impl Comparison {
    /// Relative error of each model's prediction.
    pub fn errors(&self) -> [f64; 3] {
        [
            relative_error(self.actual, self.predicted[0]),
            relative_error(self.actual, self.predicted[1]),
            relative_error(self.actual, self.predicted[2]),
        ]
    }
}

/// Predict `target` from `profile` under every compute model.
pub fn predict_all_models(
    profile: &Profile,
    app: PaperApp,
    site: &ComputeSite,
    target: &Target,
) -> [Prediction; 3] {
    ComputeModel::ALL.map(|model| {
        ExecTimePredictor {
            profile: profile.clone(),
            classes: app.classes(),
            interconnect: InterconnectParams::of_site(site),
            model,
        }
        .predict(target)
    })
}

/// The core loop of §5.1: profile once, then for every configuration in
/// `configs` run the application for real and predict it with all three
/// models.
pub fn sweep_configurations(
    app: PaperApp,
    dataset: &Dataset,
    profile: &Profile,
    configs: &[Configuration],
    wan_bw: f64,
) -> Vec<Comparison> {
    use rayon::prelude::*;
    configs
        .par_iter()
        .map(|cfg| {
            let deployment = pentium_deployment(cfg.data_nodes, cfg.compute_nodes, wan_bw);
            let site = deployment.compute.clone();
            let actual = app.execute(deployment, dataset).total().as_secs_f64();
            let target = Target {
                data_nodes: cfg.data_nodes,
                compute_nodes: cfg.compute_nodes,
                wan_bw,
                dataset_bytes: dataset.logical_bytes(),
            };
            let predicted = predict_all_models(profile, app, &site, &target).map(|p| p.total());
            Comparison { config: *cfg, actual, predicted }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_errors_match_definition() {
        let c = Comparison {
            config: Configuration::new(1, 1),
            actual: 10.0,
            predicted: [9.0, 10.0, 11.0],
        };
        let e = c.errors();
        assert!((e[0] - 0.1).abs() < 1e-12);
        assert_eq!(e[1], 0.0);
        assert!((e[2] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn sweep_produces_one_comparison_per_config() {
        let app = PaperApp::KMeans;
        let ds = app.generate("sweep", 8.0, 0.01, 1);
        let profile = collect_profile(app, pentium_deployment(1, 1, 1e6), &ds);
        let configs = [Configuration::new(1, 1), Configuration::new(2, 4)];
        let out = sweep_configurations(app, &ds, &profile, &configs, 1e6);
        assert_eq!(out.len(), 2);
        // Identity configuration: all models close to exact.
        let identity = &out[0];
        for e in identity.errors() {
            assert!(e < 0.02, "identity prediction should be near-exact, got {e}");
        }
    }
}
