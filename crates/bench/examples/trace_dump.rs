//! Capture and export a structured trace of one application run.
//!
//! ```text
//! cargo run -p fg-bench --release --example trace_dump            # kmeans
//! cargo run -p fg-bench --release --example trace_dump -- em
//! ```
//!
//! Runs the named paper application on the golden-trace configuration
//! (8 MB nominal, 2 data nodes, 4 compute nodes), prints the span tree
//! and the metrics snapshot, and writes `target/trace/<app>.jsonl`
//! (canonical record format) plus `target/trace/<app>.chrome.json`
//! (open in `chrome://tracing` or Perfetto).

use fg_bench::scenario::golden_trace_run;
use fg_bench::PaperApp;
use fg_trace::{to_chrome_json, to_jsonl, Span, Trace};

fn print_span(trace: &Trace, span: &Span, depth: usize) {
    let node = span.node.map(|n| format!(" @{n}")).unwrap_or_default();
    println!(
        "{:indent$}{} [{} .. {}] {:.6}s{node}",
        "",
        span.kind.label(),
        span.start,
        span.end,
        span.duration().as_secs_f64(),
        indent = depth * 2,
    );
    for child in trace.children(span.id) {
        print_span(trace, child, depth + 1);
    }
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "kmeans".to_string());
    let app = PaperApp::parse(&name).unwrap_or_else(|| panic!("unknown application {name:?}"));
    let (report, trace) = golden_trace_run(app);

    if let Some(root) = trace.root() {
        print_span(&trace, root, 0);
    }
    println!();
    print!("{}", trace.metrics.render_text());
    println!();
    println!(
        "report: t_disk={:.4}s t_network={:.4}s t_compute={:.4}s (t_ro={:.4}s t_g={:.4}s), {} passes",
        report.t_disk().as_secs_f64(),
        report.t_network().as_secs_f64(),
        report.t_compute().as_secs_f64(),
        report.t_ro().as_secs_f64(),
        report.t_g().as_secs_f64(),
        report.num_passes(),
    );

    let out_dir = std::path::Path::new("target/trace");
    std::fs::create_dir_all(out_dir).expect("create target/trace");
    let jsonl = out_dir.join(format!("{name}.jsonl"));
    std::fs::write(&jsonl, to_jsonl(&trace)).unwrap_or_else(|e| panic!("write {jsonl:?}: {e}"));
    let chrome = out_dir.join(format!("{name}.chrome.json"));
    std::fs::write(&chrome, to_chrome_json(&trace))
        .unwrap_or_else(|e| panic!("write {chrome:?}: {e}"));
    println!("wrote {} and {}", jsonl.display(), chrome.display());
}
