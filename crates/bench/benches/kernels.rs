//! Per-application local-reduction kernel benchmarks: the real
//! computational work behind the simulation's metered compute times.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fg_bench::PaperApp;
use std::hint::black_box;

/// One small dataset per app; the bench folds every chunk into one
/// reduction object (what a single compute node does per pass).
fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("local-reduce");
    for app in PaperApp::PAPER_FIVE.iter().chain([PaperApp::Apriori, PaperApp::Ann].iter()) {
        let dataset = app.generate(&format!("bench-{}", app.name()), 8.0, 0.01, 5);
        group.throughput(Throughput::Bytes(dataset.physical_bytes()));
        group.bench_function(app.name(), |b| {
            b.iter(|| {
                // Full single-node execution: local reduction over all
                // chunks plus the (trivial at c=1) global phase.
                let report =
                    app.execute(fg_bench::pentium_deployment(1, 1, 40e6), black_box(&dataset));
                black_box(report.total())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernels
}
criterion_main!(benches);
