//! Microbenchmarks of the simulation substrate: event queue, FIFO
//! servers, and max-min fair-share scheduling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fg_sim::{
    EventQueue, FairShareSim, FifoServer, Flow, ResourceId, ServerPool, SimDuration, SimTime,
};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event-queue");
    for &n in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("push-pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    q.push(SimTime::from_nanos(((i * 7919) % n) as u64), i);
                }
                let mut sum = 0usize;
                while let Some((_, v)) = q.pop() {
                    sum += v;
                }
                black_box(sum)
            })
        });
    }
    group.finish();
}

fn bench_servers(c: &mut Criterion) {
    let mut group = c.benchmark_group("servers");
    group.bench_function("fifo-10k-jobs", |b| {
        b.iter(|| {
            let mut s = FifoServer::new();
            for i in 0..10_000u64 {
                s.submit(SimTime::from_nanos(i * 3), SimDuration::from_nanos(5));
            }
            black_box(s.free_at())
        })
    });
    group.bench_function("pool16-10k-jobs", |b| {
        b.iter(|| {
            let mut p = ServerPool::new(16);
            for i in 0..10_000u64 {
                p.submit(SimTime::from_nanos(i), SimDuration::from_nanos(100));
            }
            black_box(p.all_done_at())
        })
    });
    group.finish();
}

fn bench_fairshare(c: &mut Criterion) {
    let mut group = c.benchmark_group("fairshare");
    for &flows in &[8usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("staggered-flows", flows), &flows, |b, &n| {
            // n flows over 8 uplinks + 8 downlinks, staggered arrivals.
            let caps: Vec<f64> = vec![100e6; 16];
            let sim = FairShareSim::new(caps);
            let flow_list: Vec<Flow> = (0..n)
                .map(|i| Flow {
                    arrival: SimTime::from_nanos((i as u64) * 1_000),
                    demand: 1e6 + (i as f64) * 1e3,
                    rate_cap: f64::INFINITY,
                    resources: vec![ResourceId(i % 8), ResourceId(8 + (i * 3) % 8)],
                })
                .collect();
            b.iter(|| black_box(sim.run(&flow_list)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_servers, bench_fairshare);
criterion_main!(benches);
