//! Benchmarks of the fg-learn online predictors: the ridge fit itself
//! (the cost a refit pays per completed job), the observe path that
//! triggers it, and trained-model inference against the analytical
//! baseline. Inference sits on the scheduler's placement hot path, so
//! its overhead over the closed-form model is the number that matters.

use criterion::{criterion_group, criterion_main, Criterion};
use fg_bench::figures::sched_models;
use fg_cluster::{Configuration, DeploymentRef};
use fg_learn::{fit_ridge, HybridPredictor, LearnedPredictor};
use fg_predict::{AnalyticalPredictor, Observation, Predictor};
use fg_sched::GridSpec;
use std::hint::black_box;

/// Deterministic pseudo-random value in [0.1, 10.1).
fn jitter(i: usize, j: usize) -> f64 {
    let mut h = (i as u64).wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(j as u64);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51afd7ed558ccd);
    0.1 + (h % 10_000) as f64 / 1_000.0
}

/// A realistic design matrix at the predictor's own width (intercept +
/// four size/bandwidth/config features).
fn design(rows: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let xs: Vec<Vec<f64>> = (0..rows)
        .map(|r| {
            let mut row = vec![1.0];
            row.extend((1..5).map(|c| jitter(r, c)));
            row
        })
        .collect();
    let ys = xs.iter().map(|row| row.iter().sum::<f64>() * 3.0).collect();
    (xs, ys)
}

fn bench_fit(c: &mut Criterion) {
    let (xs, ys) = design(64);
    c.bench_function("learn-fit-ridge-64x5", |b| {
        b.iter(|| black_box(fit_ridge(black_box(&xs), black_box(&ys), 1e-6)))
    });
}

/// One synthetic completed-job observation against the demo grid's
/// first (app, repo) key, varied enough that refits keep real work.
fn observation(grid: &GridSpec, i: usize) -> Observation {
    let (app, model) = &grid.apps[0];
    let repo = &grid.repos[0];
    let bytes = 64_000_000 + 7_000_000 * (i as u64 % 29);
    let d = DeploymentRef {
        repository: &repo.site,
        compute: &grid.sites[0].site,
        stream_bw: repo.wan.stream_bw,
        config: Configuration::new(4, 8),
        cache: None,
    };
    let p = AnalyticalPredictor
        .predict_deployment(&model.profile, model.classes, d, bytes, &grid.factors)
        .expect("demo grid is predictable");
    Observation {
        app: app.clone(),
        repo: repo.site.name.clone(),
        data_nodes: 4,
        compute_nodes: 8,
        wan_bw: repo.wan.stream_bw,
        dataset_bytes: bytes,
        predicted: [p.t_disk, p.t_network, p.t_compute],
        observed: [p.t_disk, p.t_network * (2.0 + jitter(i, 7) / 10.0), p.t_compute],
    }
}

fn bench_observe(c: &mut Criterion) {
    let grid = GridSpec::demo(sched_models());
    let obs: Vec<Observation> = (0..64).map(|i| observation(&grid, i)).collect();
    c.bench_function("learn-observe-refit-64", |b| {
        b.iter(|| {
            let learned = LearnedPredictor::default();
            for o in &obs {
                learned.observe(black_box(o));
            }
            black_box(learned.epoch())
        })
    });
}

fn bench_infer(c: &mut Criterion) {
    let grid = GridSpec::demo(sched_models());
    let learned = LearnedPredictor::default();
    let hybrid = HybridPredictor::default();
    for i in 0..64 {
        let o = observation(&grid, i);
        learned.observe(&o);
        hybrid.observe(&o);
    }
    assert!(learned.trained_keys() > 0);

    let (_, model) = &grid.apps[0];
    let repo = &grid.repos[0];
    let d = DeploymentRef {
        repository: &repo.site,
        compute: &grid.sites[0].site,
        stream_bw: repo.wan.stream_bw,
        config: Configuration::new(4, 8),
        cache: None,
    };
    let bytes = 400_000_000u64;
    let mut run = |name: &str, p: &dyn Predictor| {
        c.bench_function(name, |b| {
            b.iter(|| {
                black_box(p.predict_deployment(
                    black_box(&model.profile),
                    model.classes,
                    d,
                    black_box(bytes),
                    &grid.factors,
                ))
            })
        });
    };
    run("learn-infer-analytical", &AnalyticalPredictor);
    run("learn-infer-hybrid", &hybrid);
    run("learn-infer-learned", &learned);
}

criterion_group!(benches, bench_fit, bench_observe, bench_infer);
criterion_main!(benches);
