//! Benchmarks of the prediction framework itself: single predictions,
//! class inference, and full resource-selection sweeps. These are the
//! operations a grid scheduler would run on-line, so they must be cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fg_cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};
use fg_predict::{
    rank_deployments, AppClasses, ComputeModel, ExecTimePredictor, InterconnectParams, Profile,
    Target,
};
use std::collections::HashMap;
use std::hint::black_box;

fn profile() -> Profile {
    Profile {
        app: "kmeans".into(),
        data_nodes: 1,
        compute_nodes: 1,
        wan_bw: 40e6,
        dataset_bytes: 1_400_000_000,
        t_disk: 56.0,
        t_network: 35.0,
        t_compute: 1444.0,
        t_ro: 0.0,
        t_g: 0.02,
        max_obj_bytes: 584,
        passes: 10,
        repo_machine: "pentium-700".into(),
        compute_machine: "pentium-700".into(),
    }
}

fn bench_predict(c: &mut Criterion) {
    let predictor = ExecTimePredictor {
        profile: profile(),
        classes: AppClasses::CONSTANT_LINEAR_CONSTANT,
        interconnect: InterconnectParams { bandwidth: 100e6, latency: 0.015 },
        model: ComputeModel::GlobalReduction,
    };
    let target =
        Target { data_nodes: 8, compute_nodes: 16, wan_bw: 40e6, dataset_bytes: 2_800_000_000 };
    c.bench_function("predict-single", |b| {
        b.iter(|| black_box(predictor.predict(black_box(&target))))
    });
}

fn bench_inference(c: &mut Criterion) {
    // A pool of synthetic profiles across sizes and node counts.
    let profiles: Vec<Profile> = (0..12)
        .map(|i| {
            let mut p = profile();
            p.compute_nodes = 1 << (i % 4);
            p.dataset_bytes = 350_000_000 * (1 + (i as u64 % 3));
            p.max_obj_bytes = 584;
            p.t_g = 0.02 * p.compute_nodes as f64;
            p
        })
        .collect();
    c.bench_function("infer-classes-12-profiles", |b| {
        b.iter(|| black_box(AppClasses::infer(black_box(&profiles))))
    });
}

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("resource-selection");
    for &replicas in &[2usize, 8] {
        let sites: Vec<(RepositorySite, Wan)> = (0..replicas)
            .map(|i| {
                (
                    RepositorySite::pentium_repository(&format!("repo{i}"), 8),
                    Wan::per_stream(10e6 * (i + 1) as f64),
                )
            })
            .collect();
        let compute = vec![ComputeSite::pentium_myrinet("cs", 16)];
        let deployments = Deployment::enumerate(&sites, &compute, &Configuration::paper_grid());
        group.bench_with_input(
            BenchmarkId::new("rank", deployments.len()),
            &deployments,
            |b, ds| {
                let p = profile();
                b.iter(|| {
                    black_box(rank_deployments(
                        &p,
                        AppClasses::CONSTANT_LINEAR_CONSTANT,
                        ds,
                        2_800_000_000,
                        &HashMap::new(),
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_predict, bench_inference, bench_selection);
criterion_main!(benches);
