//! Cross-cluster prediction (§3.4 / §5.4 of the paper): profile on the
//! Pentium/Myrinet cluster, measure component scaling factors with three
//! representative applications, and predict the Opteron/Infiniband
//! cluster — without ever profiling the target application there.
//!
//! ```text
//! cargo run --release --example heterogeneous
//! ```

use freeride_g::apps::{em, kmeans, knn, vortex};
use freeride_g::cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};
use freeride_g::middleware::Executor;
use freeride_g::predict::{
    relative_error, AppClasses, ComputeModel, ExecTimePredictor, InterconnectParams, Profile,
    ScalingFactors, Target,
};

const WAN_BW: f64 = 40e6;
const SCALE: f64 = 0.01;

fn pentium(n: usize, c: usize) -> Deployment {
    Deployment::new(
        RepositorySite::pentium_repository("repo-a", 8),
        ComputeSite::pentium_myrinet("cluster-a", 16),
        Wan::per_stream(WAN_BW),
        Configuration::new(n, c),
    )
}

fn opteron(n: usize, c: usize) -> Deployment {
    Deployment::new(
        RepositorySite::opteron_repository("repo-b", 8),
        ComputeSite::opteron_infiniband("cluster-b", 16),
        Wan::per_stream(WAN_BW),
        Configuration::new(n, c),
    )
}

fn main() {
    // Representative applications measure the factors: each runs on an
    // identical 4-4 configuration on both clusters.
    let cfg = Configuration::new(4, 4);
    let mut pairs = Vec::new();
    println!("measuring component scaling factors (4-4, 130 MB each):");
    {
        let ds = kmeans::generate("rep-km", 130.0, SCALE, 17, 8);
        let a = Profile::from_report(
            &Executor::new(pentium(4, 4)).run(&kmeans::KMeans::paper(7), &ds).report,
        );
        let b = Profile::from_report(
            &Executor::new(opteron(4, 4)).run(&kmeans::KMeans::paper(7), &ds).report,
        );
        println!("  kmeans: s_c = {:.3}", b.t_compute / a.t_compute);
        pairs.push((a, b));
    }
    {
        let ds = knn::generate("rep-knn", 130.0, SCALE, 17);
        let app = knn::Knn::paper(7);
        let a = Profile::from_report(&Executor::new(pentium(4, 4)).run(&app, &ds).report);
        let b = Profile::from_report(&Executor::new(opteron(4, 4)).run(&app, &ds).report);
        println!("  knn:    s_c = {:.3}", b.t_compute / a.t_compute);
        pairs.push((a, b));
    }
    {
        let (ds, _) = vortex::generate("rep-vx", 130.0, SCALE, 17);
        let app = vortex::VortexDetect::default();
        let a = Profile::from_report(&Executor::new(pentium(4, 4)).run(&app, &ds).report);
        let b = Profile::from_report(&Executor::new(opteron(4, 4)).run(&app, &ds).report);
        println!("  vortex: s_c = {:.3}", b.t_compute / a.t_compute);
        pairs.push((a, b));
    }
    let factors = ScalingFactors::measure(&pairs);
    println!(
        "averaged factors: s_d={:.3} s_n={:.3} s_c={:.3}",
        factors.disk, factors.network, factors.compute
    );
    let _ = cfg;

    // Now predict EM — which was not among the representatives — on the
    // Opteron cluster from a Pentium profile.
    let dataset = em::generate("em-700", 700.0, SCALE, 21, 4);
    let app = em::Em::paper(21);
    let profile = Profile::from_report(&Executor::new(pentium(8, 8)).run(&app, &dataset).report);
    let predictor = ExecTimePredictor {
        profile,
        classes: AppClasses::for_app("em"),
        interconnect: InterconnectParams::of_site(&pentium(1, 1).compute),
        model: ComputeModel::GlobalReduction,
    };

    println!("\nEM on the Opteron cluster, predicted from a Pentium 8-8 profile:");
    for (n, c) in [(1usize, 1usize), (2, 4), (4, 8), (8, 16)] {
        let target = Target {
            data_nodes: n,
            compute_nodes: c,
            wan_bw: WAN_BW,
            dataset_bytes: dataset.logical_bytes(),
        };
        let on_a = predictor.predict(&target);
        let on_b = factors.apply(&on_a);
        let actual = Executor::new(opteron(n, c)).run(&app, &dataset).report;
        println!(
            "  {:>4}: predicted {:7.1}s  actual {:7.1}s  error {:5.2}%",
            format!("{n}-{c}"),
            on_b.total(),
            actual.total().as_secs_f64(),
            relative_error(actual.total().as_secs_f64(), on_b.total()) * 100.0
        );
    }
}
