//! The prediction-and-placement service end to end: start an
//! `fg-serve` server, connect a client over the wire protocol, ask for
//! prediction quotes, submit a trace-shaped multi-tenant workload, and
//! drain the session into the same `SchedResult` a direct
//! `Scheduler::run` would have produced — bit for bit.
//!
//! ```text
//! cargo run --release --example serve
//! ```

use fg_bench::figures::sched_models;
use fg_serve::{ServeClient, Server};
use freeride_g::sched::{GridSpec, LoadLevel, Policy, Scheduler, WorkloadShape, WorkloadSpec};

fn main() {
    // The server owns one scheduling session: a demo grid, the
    // EDF-with-admission-control policy, and a decision core that lives
    // on the server's core thread.
    let grid = GridSpec::demo(sched_models());
    let apps: Vec<&str> = grid.apps.iter().map(|(n, _)| n.as_str()).collect();
    let jobs =
        WorkloadSpec::shaped(WorkloadShape::HeavyTail, LoadLevel::Medium, &apps, 42).generate();
    let server = Server::start(Scheduler::new(grid, Policy::EdfAdmit));
    println!("server up: {} query workers\n", server.workers());

    let mut client = ServeClient::connect(&server);

    // A quote is a read: answered from the published snapshot by the
    // query pool, it never perturbs the schedule.
    let probe = &jobs[0];
    let quote = client
        .quote(&probe.app, probe.dataset_bytes, probe.deadline_slack)
        .expect("quote round trip")
        .expect("app is known to the grid");
    println!(
        "quote for {} ({} MB): finish ≈ {:.0}s, would admit: {:?}",
        probe.app,
        probe.dataset_bytes >> 20,
        quote.estimate,
        quote.would_admit,
    );

    // Submissions stream in arrival order; each acknowledgement
    // carries the admission decision and estimate.
    let mut admitted = 0usize;
    for job in &jobs {
        let ack = client.submit(job.clone()).expect("submit round trip");
        admitted += usize::from(ack.admitted);
    }
    println!("submitted {} jobs, {admitted} admitted", jobs.len());

    // Drain runs the schedule to completion and returns the flattened
    // result; the streamed event log holds every decision in order.
    let drained = client.drain().expect("drain round trip");
    let events = client.take_events();
    println!(
        "drained: makespan {:.0}s, {} violations, {} scheduling events streamed",
        drained.makespan,
        drained.violations.len(),
        events.len()
    );

    // The served schedule is bit-identical to driving the scheduler
    // directly — the whole point of the deterministic service layer.
    let direct = Scheduler::new(GridSpec::demo(sched_models()), Policy::EdfAdmit).run(&jobs);
    assert_eq!(direct.makespan.to_bits(), drained.makespan.to_bits());
    println!("\ndirect run makespan matches the served run bit for bit");

    drop(client);
    server.shutdown();
}
