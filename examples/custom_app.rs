//! Writing your own FREERIDE-G application: a word-length histogram over
//! a remote corpus, expressed as a generalized reduction.
//!
//! Demonstrates the full user surface of the middleware API — a
//! reduction object with `merge`, the local and global reduction
//! functions, work metering, and caching — and that the prediction
//! framework works on the new application unchanged (classes inferred
//! from two profile runs rather than supplied).
//!
//! ```text
//! cargo run --release --example custom_app
//! ```

use freeride_g::chunks::{codec, Dataset, DatasetBuilder};
use freeride_g::cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};
use freeride_g::middleware::{
    Executor, ObjSize, PassOutcome, ReductionApp, ReductionObject, WorkMeter,
};
use freeride_g::predict::{
    relative_error, AppClasses, ComputeModel, ExecTimePredictor, InterconnectParams, Profile,
    Target,
};
use freeride_g::sim::rng::stream_rng;
use rand::Rng;

const MAX_LEN: usize = 32;

/// The reduction object: counts of word lengths 1..=MAX_LEN.
#[derive(Clone)]
struct Histogram {
    counts: [u64; MAX_LEN],
}

impl ReductionObject for Histogram {
    fn merge(&mut self, other: &Self, meter: &mut WorkMeter) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        meter.fixed_flops(MAX_LEN as u64);
    }

    fn size(&self) -> ObjSize {
        // Fixed-size object: the histogram does not grow with the corpus.
        ObjSize { fixed: (MAX_LEN * 8) as u64, data: 0 }
    }
}

/// The application: one scan, then report the histogram.
struct WordLengths;

impl ReductionApp for WordLengths {
    type Obj = Histogram;
    type State = Option<[u64; MAX_LEN]>;

    fn name(&self) -> &str {
        "word-lengths"
    }

    fn initial_state(&self) -> Self::State {
        None
    }

    fn new_object(&self, _: &Self::State) -> Histogram {
        Histogram { counts: [0; MAX_LEN] }
    }

    fn local_reduce(
        &self,
        _: &Self::State,
        chunk: &freeride_g::chunks::Chunk,
        obj: &mut Histogram,
        meter: &mut WorkMeter,
    ) {
        // Each u32 is a word length (a real system would tokenize text;
        // the reduction structure is identical).
        let words = codec::decode_u32s(&chunk.payload);
        for &w in &words {
            let bucket = (w as usize).clamp(1, MAX_LEN) - 1;
            obj.counts[bucket] += 1;
        }
        meter.data_mem(words.len() as u64);
        meter.data_cmp(words.len() as u64);
    }

    fn global_finalize(
        &self,
        _: &Self::State,
        merged: Histogram,
        meter: &mut WorkMeter,
    ) -> PassOutcome<Self::State> {
        meter.fixed_mem(MAX_LEN as u64);
        PassOutcome::Finished(Some(merged.counts))
    }

    fn state_size(&self, _: &Self::State) -> ObjSize {
        ObjSize { fixed: (MAX_LEN * 8) as u64, data: 0 }
    }

    fn caches(&self) -> bool {
        false
    }
}

fn corpus(id: &str, nominal_mb: f64, scale: f64, seed: u64) -> Dataset {
    let total = (nominal_mb * 1e6 * scale / 4.0) as u64;
    let mut rng = stream_rng(seed, "corpus");
    let mut builder = DatasetBuilder::new(id, "corpus", scale);
    let per_chunk = (500_000.0 * scale) as u64;
    let mut left = total;
    while left > 0 {
        let n = per_chunk.min(left);
        let words: Vec<u32> = (0..n)
            .map(|_| {
                // Zipf-flavored word lengths around 5.
                let base: u32 = rng.gen_range(1..8);
                let tail: u32 = if rng.gen_bool(0.1) { rng.gen_range(8..24) } else { 0 };
                base + tail
            })
            .collect();
        builder.push_chunk(codec::encode_u32s(&words), n, None);
        left -= n;
    }
    builder.build()
}

fn deployment(n: usize, c: usize) -> Deployment {
    Deployment::new(
        RepositorySite::pentium_repository("repo", 8),
        ComputeSite::pentium_myrinet("cluster", 16),
        Wan::per_stream(40e6),
        Configuration::new(n, c),
    )
}

fn main() {
    let small = corpus("corpus-200", 200.0, 0.01, 3);
    let large = corpus("corpus-800", 800.0, 0.01, 4);

    // Run the custom app.
    let run = Executor::new(deployment(2, 4)).run(&WordLengths, &small);
    let histogram = run.final_state.expect("finished");
    let total: u64 = histogram.iter().sum();
    println!("histogram over {total} words; mode length = {}", {
        histogram.iter().enumerate().max_by_key(|(_, c)| **c).unwrap().0 + 1
    });

    // Infer the classes from profile runs instead of declaring them.
    // The runs must vary the node count and the dataset size
    // *independently*, or neither class can be discriminated.
    let p1 =
        Profile::from_report(&Executor::new(deployment(1, 1)).run(&WordLengths, &small).report);
    let p2 =
        Profile::from_report(&Executor::new(deployment(1, 4)).run(&WordLengths, &small).report);
    let p3 =
        Profile::from_report(&Executor::new(deployment(1, 1)).run(&WordLengths, &large).report);
    let classes = AppClasses::infer(&[p1.clone(), p2, p3]).expect("profiles are informative");
    println!("inferred classes: {classes:?}");
    assert_eq!(classes, AppClasses::CONSTANT_LINEAR_CONSTANT);

    // And predict a bigger deployment.
    let predictor = ExecTimePredictor {
        profile: p1,
        classes,
        interconnect: InterconnectParams::of_site(&deployment(1, 1).compute),
        model: ComputeModel::GlobalReduction,
    };
    let target = Target {
        data_nodes: 4,
        compute_nodes: 16,
        wan_bw: 40e6,
        dataset_bytes: small.logical_bytes(),
    };
    let predicted = predictor.predict(&target);
    let actual = Executor::new(deployment(4, 16)).run(&WordLengths, &small).report;
    println!(
        "4-16 predicted {:.2}s, actual {:.2}s, error {:.2}%",
        predicted.total(),
        actual.total().as_secs_f64(),
        relative_error(actual.total().as_secs_f64(), predicted.total()) * 100.0
    );
}
