//! `fg_top`: a terminal dashboard over the live telemetry plane.
//!
//! Starts an `fg-serve` server whose WAN degrades mid-run (repository
//! 0's bandwidth drops to 15% at the median arrival), subscribes the
//! session to metrics, and replays a kmeans workload while rendering
//! the pushed `MetricsSnapshot` stream as a refreshing status panel:
//! core progress counters, the predictor-accuracy ledger's per-key
//! residual means, per-tenant SLO gauges, and every drift alarm the
//! ledger raises as the degradation bites. After the drain it prints
//! the incident bundles the flight recorder cut along the way.
//!
//! ```text
//! cargo run --release --example fg_top
//! ```

use fg_bench::figures::sched_models;
use fg_serve::{IncidentReason, ServeClient, ServeMetrics, Server};
use freeride_g::sched::{
    Degradation, DriftConfig, GridSpec, LoadLevel, Policy, Scheduler, TelemetryConfig,
    WorkloadShape, WorkloadSpec,
};

/// One refresh of the dashboard panel.
fn render(m: &ServeMetrics) {
    let s = &m.stats;
    let t = &m.telemetry;
    println!("── fg-top · epoch {:<6} · t = {:>7.0}s ──────────────────────────", m.epoch, t.now);
    println!(
        "   jobs     submitted {:>4}  admitted {:>4}  completed {:>4}  queued {:>3}  running {:>3}",
        s.submitted, s.admitted, s.completed, s.queued, s.running
    );
    println!("   ledger   {} accuracy samples over {} (app, repo) keys", t.samples, t.keys.len());
    for k in &t.keys {
        println!(
            "            {:<10} @ {:<8}  residual mean  disk {:+.2}  net {:+.2}  comp {:+.2}",
            k.app, k.repo, k.mean[0], k.mean[1], k.mean[2]
        );
    }
    for slo in &t.tenants {
        let p99 = slo.queue_wait_p99.map_or("—".into(), |w| format!("{w:.0}s"));
        println!(
            "   tenant {} completed {:>4}  deadline misses {:>4} ({:>5.1}%)  \
             quote err {:>5.1}%  p99 wait {}",
            slo.tenant,
            slo.completed,
            slo.deadline_violations,
            100.0 * slo.violation_rate,
            100.0 * slo.mean_quote_error,
            p99
        );
    }
    if t.alarms.is_empty() {
        println!("   alarms   none");
    } else {
        println!("   ALARMS   {}", t.alarms.len());
        for a in &t.alarms {
            println!(
                "            {:?} drift: {} via {} at t = {:.0}s  (z {:.1}, residual {:+.2})",
                a.component, a.app, a.repo, a.at, a.z, a.residual
            );
        }
    }
    println!();
}

fn main() {
    // A kmeans-only heavy workload against the demo grid; halfway
    // through the arrivals, repository 0's uplink degrades to 15% of
    // its provisioned bandwidth — the predictor keeps quoting the
    // healthy rate, so observed network times drift away from the
    // predictions and the ledger's alarm gate trips.
    let jobs =
        WorkloadSpec::shaped(WorkloadShape::Uniform, LoadLevel::Heavy, &["kmeans"], 9).generate();
    let mut arrivals: Vec<f64> = jobs.iter().map(|j| j.arrival).collect();
    arrivals.sort_by(f64::total_cmp);
    let onset = arrivals[arrivals.len() / 2];

    let telemetry = TelemetryConfig {
        // Alarm after three samples per key instead of eight: the demo
        // workload is small, and we want detection on screen.
        drift: DriftConfig { min_samples: 3, ..DriftConfig::default() },
        ..TelemetryConfig::default()
    };
    let sched = Scheduler::new(GridSpec::demo(sched_models()), Policy::Fcfs)
        .with_telemetry(telemetry)
        .with_degradation(Degradation { repo: 0, start: onset, factor: 0.15 });
    let server = Server::start(sched);
    let mut client = ServeClient::connect(&server);
    println!("fg-top: {} jobs, WAN degradation on repository 0 from t = {onset:.0}s\n", jobs.len());

    // One submission primes the metrics hub (its acknowledgement
    // proves the core thread has published), then the subscription ack
    // is the first panel.
    client.submit(jobs[0].clone()).expect("submit");
    let ack = client.subscribe_metrics(0).expect("subscribe");
    render(&ack);

    // Stream the rest of the workload; snapshots are pushed behind
    // responses whenever the telemetry epoch advances, and we redraw
    // on the freshest one every few submissions.
    for (i, job) in jobs[1..].iter().enumerate() {
        client.submit(job.clone()).expect("submit");
        if (i + 2) % 8 == 0 {
            if let Some(m) = client.take_metrics().into_iter().next_back() {
                render(&m);
            }
        }
    }

    // The final plane rides behind the drain response: everything
    // admitted has completed, and the alarm log is complete.
    let drained = client.drain().expect("drain");
    let fin = client.recv_metrics().expect("final metrics push");
    render(&fin);
    println!(
        "drained: makespan {:.0}s, {} of {} jobs completed, {} drift alarms",
        drained.makespan,
        fin.stats.completed,
        jobs.len(),
        fin.telemetry.alarms.len()
    );

    // The flight recorder cut one incident bundle per trip — each a
    // self-contained JSONL black box (reason, recent decision events,
    // ledger tail, core stats).
    drop(client);
    let incidents = server.incidents();
    println!("incident bundles: {}", incidents.len());
    for b in &incidents {
        let what = match &b.reason {
            IncidentReason::Drift { alarm } => {
                format!("drift ({} via {})", alarm.app, alarm.repo)
            }
            IncidentReason::SloBreach { tenant, violation_rate, .. } => {
                format!("SLO breach (tenant {tenant}, {:.0}% violations)", 100.0 * violation_rate)
            }
            IncidentReason::DecodePoisoned { error } => format!("decode poisoned ({error})"),
        };
        println!("  t = {:>7.0}s  {what}  [{} events recorded]", b.at, b.events.len());
    }
    server.shutdown();
}
