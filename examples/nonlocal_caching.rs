//! Non-local caching (the §2.1 resource-selection goal the paper
//! deferred): when compute nodes lack scratch storage for a multi-pass
//! application, the middleware stages chunks at a caching site — "a
//! location from which it can be accessed at a lower cost than the
//! original repository" — and the selection framework picks that site.
//!
//! Also demonstrates the execution-timeline rendering.
//!
//! ```text
//! cargo run --release --example nonlocal_caching
//! ```

use freeride_g::apps::em;
use freeride_g::cluster::{CacheSite, ComputeSite, Configuration, Deployment, RepositorySite, Wan};
use freeride_g::middleware::{timeline, Executor};
use freeride_g::predict::{rank_deployments, AppClasses, Profile};
use std::collections::HashMap;

fn deployment(storage: u64, cache: Option<CacheSite>) -> Deployment {
    let mut site = ComputeSite::pentium_myrinet("campus", 16);
    site.node_storage_bytes = storage;
    let mut d = Deployment::new(
        // The origin repository is far away: a thin WAN.
        RepositorySite::pentium_repository("origin", 8),
        site,
        Wan::per_stream(8e6),
        Configuration::new(4, 8),
    );
    d.cache = cache;
    d
}

fn main() {
    let dataset = em::generate("sensor-sweep", 700.0, 0.01, 13, 4);
    let app = em::Em::paper(13);

    // A nearby storage site with a fat pipe can serve as the cache.
    let nearby = CacheSite::new(
        RepositorySite::pentium_repository("nearby-storage", 8),
        4,
        Wan::per_stream(50e6),
    );

    // Profile under ordinary local caching.
    let profile_run = Executor::new(deployment(u64::MAX, None)).run(&app, &dataset);
    let profile = Profile::from_report(&profile_run.report);
    println!("=== profile run (plentiful scratch storage: local caching)");
    println!("{}", timeline::render(&profile_run.report));

    // Storage-starved candidates: refetch vs non-local cache.
    let candidates = vec![
        deployment(1_000_000, None),                 // must refetch
        deployment(1_000_000, Some(nearby.clone())), // can stage nearby
    ];
    let ranked = rank_deployments(
        &profile,
        AppClasses::for_app("em"),
        &candidates,
        dataset.logical_bytes(),
        &HashMap::new(),
    );
    println!("=== storage-starved candidates, ranked by predicted cost");
    for cand in &ranked {
        let cache_desc = cand
            .deployment
            .cache
            .as_ref()
            .map(|c| format!("cache at {}", c.site.name))
            .unwrap_or_else(|| "re-fetch from origin".into());
        println!("  {:24} predicted {:8.1}s  ({cache_desc})", cand.deployment.label(), cand.cost());
    }

    // Run the winner and the loser for real.
    println!("\n=== actual executions");
    for cand in &ranked {
        let report = Executor::new(cand.deployment.clone()).run(&app, &dataset).report;
        println!(
            "  {:?} caching: actual {:8.1}s (predicted {:8.1}s)",
            report.cache_mode,
            report.total().as_secs_f64(),
            cand.cost()
        );
    }
    let best = Executor::new(ranked[0].deployment.clone()).run(&app, &dataset).report;
    println!("\n=== timeline of the selected deployment");
    println!("{}", timeline::render(&best));
}
