//! Multi-tenant scheduling driven by the prediction framework: a
//! three-tenant job stream over the seven applications, placed onto a
//! two-repository / two-site demo grid, under four queueing policies.
//!
//! Shows the whole `fg-sched` surface: profiling apps into prediction
//! models, generating a seeded workload, running the contention-aware
//! event loop, and reading outcomes, metrics, and per-job spans.
//!
//! ```text
//! cargo run --release --example scheduler
//! ```

use fg_bench::figures::sched_models;
use freeride_g::sched::{GridSpec, JobOutcome, LoadLevel, Policy, Scheduler, WorkloadSpec};

fn mean<'a>(
    values: impl Iterator<Item = &'a JobOutcome>,
    f: impl Fn(&JobOutcome) -> Option<f64>,
) -> f64 {
    let v: Vec<f64> = values.filter_map(f).collect();
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

fn main() {
    // One prediction model per application, from small 1-1 profile runs.
    let models = sched_models();
    let apps: Vec<&str> = models.iter().map(|(n, _)| n.as_str()).collect();
    let workload = WorkloadSpec::preset(LoadLevel::Heavy, &apps, 42);
    let jobs = workload.generate();
    println!(
        "workload: {} jobs from {} tenants over {} apps (heavy load, seed {})\n",
        jobs.len(),
        workload.tenants.len(),
        apps.len(),
        workload.seed
    );

    println!(
        "{:<14} {:>9} {:>10} {:>10} {:>9} {:>9}",
        "policy", "admitted", "slowdown", "est. err", "deadline", "makespan"
    );
    for policy in Policy::ALL {
        let grid = GridSpec::demo(models.clone());
        let result = Scheduler::new(grid, policy).run(&jobs);
        assert!(result.violations.is_empty(), "{:?}", result.violations);
        let admitted: Vec<&JobOutcome> = result.outcomes.iter().filter(|o| o.admitted).collect();
        let met = admitted.iter().filter(|o| o.met_deadline() == Some(true)).count();
        println!(
            "{:<14} {:>6}/{:<2} {:>9.2}x {:>9.1}% {:>8.0}% {:>8.0}s",
            policy.name(),
            admitted.len(),
            result.outcomes.len(),
            mean(admitted.iter().copied(), |o| o.slowdown()),
            100.0 * mean(admitted.iter().copied(), |o| o.completion_error()),
            100.0 * met as f64 / admitted.len().max(1) as f64,
            result.makespan,
        );
    }

    // Walk one run's outcomes in detail: the EDF + admission policy.
    let grid = GridSpec::demo(models);
    let result = Scheduler::new(grid, Policy::EdfAdmit).run(&jobs);
    println!("\nedf-admit, first six jobs:");
    for o in result.outcomes.iter().take(6) {
        match (o.placed_at, o.finish) {
            (Some(placed), Some(finish)) => println!(
                "  job {:>2} [{}] {:>7.1} MB  arrived {:>6.1}s  waited {:>6.1}s  \
                 ran {:>6.1}s on {}  ({})",
                o.id,
                o.app,
                o.dataset_bytes as f64 / 1e6,
                o.arrival,
                placed - o.arrival,
                finish - placed,
                o.placement.as_ref().map(|p| p.config.as_str()).unwrap_or("?"),
                if o.met_deadline() == Some(true) { "met deadline" } else { "missed deadline" },
            ),
            _ => println!(
                "  job {:>2} [{}] rejected: {}",
                o.id,
                o.app,
                o.reject_reason.as_deref().unwrap_or("?")
            ),
        }
    }

    let m = &result.trace.metrics;
    println!(
        "\nmetrics: {} submitted, {} admitted, {} rejected, {} backfill starts, peak queue {}",
        m.counter("sched_jobs_submitted").unwrap_or(0),
        m.counter("sched_jobs_admitted").unwrap_or(0),
        m.counter("sched_jobs_rejected").unwrap_or(0),
        m.counter("sched_backfill_starts").unwrap_or(0),
        m.gauge("sched_queue_depth_max").unwrap_or(0.0),
    );
    println!(
        "trace: {} spans (one job span per submission, phase children)",
        result.trace.spans.len()
    );
}
