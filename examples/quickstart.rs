//! Quickstart: run a data-mining application on a simulated grid
//! deployment, collect its profile, and predict another configuration.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use freeride_g::apps::kmeans;
use freeride_g::cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};
use freeride_g::middleware::Executor;
use freeride_g::predict::{
    relative_error, AppClasses, ComputeModel, ExecTimePredictor, InterconnectParams, Profile,
    Target,
};

fn deployment(n: usize, c: usize) -> Deployment {
    Deployment::new(
        RepositorySite::pentium_repository("repository", 8),
        ComputeSite::pentium_myrinet("cluster", 16),
        Wan::per_stream(40e6), // 40 MB/s per data-node stream
        Configuration::new(n, c),
    )
}

fn main() {
    // A "1.4 GB" clustered dataset, generated at 1/100 physical scale:
    // disk, network, and metered compute are charged at nominal volume.
    let dataset = kmeans::generate("quickstart-points", 1400.0, 0.01, 42, 8);
    println!(
        "dataset: {} chunks, {} points, {:.0} MB logical",
        dataset.num_chunks(),
        dataset.elements(),
        dataset.logical_bytes() as f64 / 1e6
    );

    // Profile run: one data node, one compute node.
    let app = kmeans::KMeans::paper(7);
    let profile_run = Executor::new(deployment(1, 1)).run(&app, &dataset);
    let profile = Profile::from_report(&profile_run.report);
    println!(
        "profile 1-1: T_disk={:.1}s T_network={:.1}s T_compute={:.1}s (total {:.1}s)",
        profile.t_disk,
        profile.t_network,
        profile.t_compute,
        profile.total()
    );
    println!(
        "k-means found {} centroids, final SSE {:.3e}",
        profile_run.final_state.centroids.len(),
        profile_run.final_state.sse
    );

    // Predict an 8-data-node, 16-compute-node deployment...
    let predictor = ExecTimePredictor {
        profile,
        classes: AppClasses::for_app("kmeans"),
        interconnect: InterconnectParams::of_site(&deployment(1, 1).compute),
        model: ComputeModel::GlobalReduction,
    };
    let target = Target {
        data_nodes: 8,
        compute_nodes: 16,
        wan_bw: 40e6,
        dataset_bytes: dataset.logical_bytes(),
    };
    let predicted = predictor.predict(&target);

    // ...and check it against an actual run.
    let actual = Executor::new(deployment(8, 16)).run(&app, &dataset).report;
    println!(
        "8-16 predicted {:.1}s, actual {:.1}s, relative error {:.2}%",
        predicted.total(),
        actual.total().as_secs_f64(),
        relative_error(actual.total().as_secs_f64(), predicted.total()) * 100.0
    );
}
