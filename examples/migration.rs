//! Preemptive migration, checkpoint/resume, and per-tenant quotas: the
//! scheduler's opt-in extensions working together under a sustained
//! bandwidth collapse on the fast repository.
//!
//! Two identical runs of a medium three-tenant workload, both with
//! repository 0 degraded to 10% of nominal from t=0: one pinned to its
//! initial placements, one allowed to checkpoint a transfer that falls
//! behind the fluid model's expectation and resume it from the other
//! replica when `fg-predict`'s cost/benefit model says the switch pays
//! for itself.
//!
//! ```text
//! cargo run --release --example migration
//! ```

use fg_bench::figures::sched_models;
use freeride_g::sched::{
    Degradation, GridSpec, JobOutcome, LoadLevel, MigrationConfig, Policy, Scheduler, TenantQuota,
    WorkloadSpec,
};

fn mean_slowdown(outcomes: &[JobOutcome]) -> f64 {
    let v: Vec<f64> = outcomes.iter().filter_map(|o| o.slowdown()).collect();
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

fn main() {
    let models = sched_models();
    let apps: Vec<&str> = models.iter().map(|(n, _)| n.as_str()).collect();
    let jobs = WorkloadSpec::preset(LoadLevel::Medium, &apps, 42).generate();

    // Token-bucket submission quotas (generous here — tighten capacity /
    // refill to see `quota:` rejections), deadline-driven preemption
    // with a 2 s checkpoint/restore overhead, and the fast repository
    // degraded to 10% for the whole run.
    let build = |migrate: bool| {
        let mut s = Scheduler::new(GridSpec::demo(models.clone()), Policy::FcfsBackfill)
            .with_quotas(vec![TenantQuota { capacity: 1000.0, refill_per_sec: 1.0 }; 3])
            .with_preemption(2.0)
            .with_degradation(Degradation { repo: 0, start: 0.0, factor: 0.1 });
        if migrate {
            s = s.with_migration(MigrationConfig::default());
        }
        s
    };

    let stay = build(false).run(&jobs);
    let moved = build(true).run(&jobs);
    assert!(stay.violations.is_empty() && moved.violations.is_empty());

    println!("{} jobs, repository 0 degraded to 10% from t=0\n", jobs.len());
    println!(
        "{:<12} {:>10} {:>11} {:>12} {:>10}",
        "run", "slowdown", "migrations", "preemptions", "makespan"
    );
    for (name, r) in [("stay-put", &stay), ("migrate", &moved)] {
        println!(
            "{:<12} {:>9.2}x {:>11} {:>12} {:>9.0}s",
            name,
            mean_slowdown(&r.outcomes),
            r.trace.metrics.counter("sched_migrations").unwrap_or(0),
            r.trace.metrics.counter("sched_preemptions").unwrap_or(0),
            r.makespan,
        );
    }

    // Every migration is recorded on the job outcome and as
    // Checkpoint/Migrate spans in the trace.
    if let Some(o) = moved.outcomes.iter().find(|o| o.migration.is_some()) {
        let m = o.migration.as_ref().unwrap();
        println!(
            "\nexample: job {} ({}) checkpointed at t={:.1}s, moved {} -> {}, resumed at t={:.1}s",
            o.id, o.app, m.at, m.from_repo, m.to_repo, m.until
        );
    }
    println!(
        "quota rejections: {}, quota violations: {}",
        moved.trace.metrics.counter("sched_quota_rejections").unwrap_or(0),
        moved.trace.metrics.counter("sched_quota_violations").unwrap_or(0),
    );
}
