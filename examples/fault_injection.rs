//! Fault injection and recovery: crash two data nodes, throttle the
//! WAN, slow a compute node — and watch the middleware route around all
//! of it while the prediction framework migrates to a better replica.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```

use freeride_g::apps::kmeans;
use freeride_g::cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};
use freeride_g::middleware::{timeline, Executor, FaultOptions};
use freeride_g::predict::bandwidth::Ewma;
use freeride_g::predict::{AppClasses, Profile, ReselectionController};
use freeride_g::sim::{FaultSchedule, SimDuration, SimTime};
use std::collections::HashMap;

/// A replica site. Compute-side storage is disabled so every pass
/// refetches over the WAN — mid-run faults stay visible to every pass.
fn replica(repo_name: &str, wan_bw: f64, n: usize, c: usize) -> Deployment {
    let mut site = ComputeSite::pentium_myrinet("cluster", 16);
    site.node_storage_bytes = 0;
    Deployment::new(
        RepositorySite::pentium_repository(repo_name, 8),
        site,
        Wan::per_stream(wan_bw),
        Configuration::new(n, c),
    )
}

fn main() {
    let dataset = kmeans::generate("faulty-points", 200.0, 0.01, 42, 8);
    let app = kmeans::KMeans::paper(7);
    let (n, c) = (4, 8);

    // Baseline: the fault-free run.
    let plain = Executor::new(replica("primary", 40e6, n, c)).run(&app, &dataset);
    println!("fault-free:  {:.2}s", plain.report.total().as_secs_f64());

    // A hand-built worst day: two data-node crashes at t=0, the WAN at
    // 30% for the first minute, and one compute node 4x slower.
    let schedule = FaultSchedule::none()
        .crash(1, SimTime::ZERO)
        .crash(3, SimTime::ZERO)
        .degrade(SimTime::ZERO, SimTime::ZERO + SimDuration::from_secs(60), 0.3)
        .straggler(5, 4.0);
    let faulty = Executor::new(replica("primary", 40e6, n, c)).run_with_faults(
        &app,
        &dataset,
        &schedule,
        &FaultOptions::default(),
        None,
    );
    let r = &faulty.report;
    println!(
        "under faults: {:.2}s (detection {:.2}s, straggler recovery {:.2}s)",
        r.total().as_secs_f64(),
        r.t_fault_detection().as_secs_f64(),
        r.t_straggler_recovery().as_secs_f64()
    );
    // Recovery changed the clock, never the answer.
    for (a, b) in plain.final_state.centroids.iter().zip(faulty.final_state.centroids.iter()) {
        assert_eq!(a, b, "faults must not change the reduction result");
    }
    println!("reduction result: bit-identical to the fault-free run");
    println!("{}", timeline::render(r));

    // Now close the loop: a profile-driven controller watches observed
    // bandwidth and migrates to the backup replica when the primary's
    // WAN path collapses for the rest of the run.
    let profile_run = Executor::new(replica("primary", 40e6, 1, 1)).run(&app, &dataset);
    let profile = Profile::from_report(&profile_run.report);
    let mut controller = ReselectionController::new(
        profile,
        AppClasses::for_app("kmeans"),
        vec![replica("primary", 40e6, n, c), replica("backup", 25e6, n, c)],
        dataset.logical_bytes(),
        HashMap::new(),
        Box::new(Ewma::new(0.5)),
    );
    // The collapse is a window, not a property of the replica: it hits
    // whichever path the run is on. Keep it transient so the controller
    // escapes to the backup once instead of chasing its own tail.
    let collapse = FaultSchedule::none().degrade(
        SimTime::ZERO,
        SimTime::ZERO + SimDuration::from_secs(40),
        0.1,
    );
    let migrated = Executor::new(replica("primary", 40e6, n, c)).run_with_faults(
        &app,
        &dataset,
        &collapse,
        &FaultOptions::default(),
        Some(&mut controller),
    );
    println!(
        "primary collapsed to 4 MB/s: controller migrated {} time(s), finished in {:.2}s \
         ({:.2}s charged to migration)",
        controller.migrations(),
        migrated.report.total().as_secs_f64(),
        migrated.report.t_migration().as_secs_f64()
    );
}
