//! Resource and replica selection: the problem the prediction framework
//! exists to solve (§3 of the paper).
//!
//! A dataset is replicated at two repositories with different WAN paths;
//! two compute sites and several node-count configurations are available.
//! The selector predicts every feasible (replica, compute site,
//! configuration) combination from one profile and ranks them; we then
//! run the top and bottom picks for real to confirm the ordering.
//!
//! ```text
//! cargo run --release --example resource_selection
//! ```

use freeride_g::apps::em;
use freeride_g::chunks::ReplicaCatalog;
use freeride_g::cluster::{ComputeSite, Configuration, Deployment, RepositorySite, Wan};
use freeride_g::middleware::Executor;
use freeride_g::predict::{rank_deployments, AppClasses, Profile};
use std::collections::HashMap;

fn main() {
    let dataset = em::generate("survey-1400", 1400.0, 0.01, 9, 4);
    let app = em::Em::paper(9);

    // Replica catalog: the dataset lives at two sites.
    let mut catalog = ReplicaCatalog::new();
    catalog.register("survey-1400", "near-repo");
    catalog.register("survey-1400", "far-repo");
    println!("replicas of survey-1400: {:?}", catalog.replicas("survey-1400"));

    // The near replica has a fat pipe but only 2 data nodes; the far
    // replica has 8 data nodes behind a thinner WAN.
    let near = (RepositorySite::pentium_repository("near-repo", 2), Wan::per_stream(60e6));
    let far = (RepositorySite::pentium_repository("far-repo", 8), Wan::per_stream(15e6));
    let site = ComputeSite::pentium_myrinet("campus-cluster", 16);

    let configs: Vec<Configuration> = Configuration::paper_grid();
    let deployments = Deployment::enumerate(&[near, far], std::slice::from_ref(&site), &configs);
    println!("{} feasible deployments enumerated", deployments.len());

    // One profile run on a minimal deployment.
    let profile_dep = Deployment::new(
        RepositorySite::pentium_repository("near-repo", 2),
        site,
        Wan::per_stream(60e6),
        Configuration::new(1, 1),
    );
    let profile =
        Profile::from_report(&Executor::new(profile_dep.clone()).run(&app, &dataset).report);

    let ranked = rank_deployments(
        &profile,
        AppClasses::for_app("em"),
        &deployments,
        dataset.logical_bytes(),
        &HashMap::new(),
    );
    println!("\ntop five predicted deployments:");
    for cand in ranked.iter().take(5) {
        println!(
            "  {:28} predicted {:8.1}s  (disk {:6.1}s net {:6.1}s compute {:7.1}s)",
            cand.deployment.label(),
            cand.cost(),
            cand.predicted.t_disk,
            cand.predicted.t_network,
            cand.predicted.t_compute,
        );
    }

    // Verify the selector's ordering against reality: run best and worst.
    let best = &ranked[0];
    let worst = ranked.last().expect("non-empty ranking");
    let best_actual = Executor::new(best.deployment.clone()).run(&app, &dataset).report;
    let worst_actual = Executor::new(worst.deployment.clone()).run(&app, &dataset).report;
    println!(
        "\nbest pick   {:28} actual {:8.1}s",
        best.deployment.label(),
        best_actual.total().as_secs_f64()
    );
    println!(
        "worst pick  {:28} actual {:8.1}s",
        worst.deployment.label(),
        worst_actual.total().as_secs_f64()
    );
    assert!(
        best_actual.total() < worst_actual.total(),
        "selection framework ordered deployments incorrectly"
    );
    println!("\nselector ordering confirmed by actual execution");
}
